"""Tests for the deterministic HMAC-DRBG."""

import pytest

from repro.crypto.rng import DeterministicRandom


def test_same_seed_same_stream():
    a = DeterministicRandom(1234)
    b = DeterministicRandom(1234)
    assert a.random_bytes(64) == b.random_bytes(64)


def test_different_seeds_differ():
    assert DeterministicRandom(1).random_bytes(32) != DeterministicRandom(2).random_bytes(32)


def test_seed_types_accepted():
    assert DeterministicRandom(b"bytes").random_bytes(8)
    assert DeterministicRandom("string").random_bytes(8)
    assert DeterministicRandom(42).random_bytes(8)


def test_string_and_bytes_seeds_are_consistent():
    assert (
        DeterministicRandom("abc").random_bytes(16)
        == DeterministicRandom(b"abc").random_bytes(16)
    )


def test_random_bytes_length():
    rng = DeterministicRandom(1)
    for n in (0, 1, 31, 32, 33, 1000):
        assert len(rng.random_bytes(n)) == n


def test_random_bytes_negative_rejected():
    with pytest.raises(ValueError):
        DeterministicRandom(1).random_bytes(-1)


def test_random_int_bit_bound():
    rng = DeterministicRandom(5)
    for bits in (1, 7, 8, 9, 64, 257):
        for _ in range(20):
            assert 0 <= rng.random_int(bits) < (1 << bits)


def test_random_int_rejects_nonpositive():
    with pytest.raises(ValueError):
        DeterministicRandom(1).random_int(0)


def test_randbelow_range_and_coverage():
    rng = DeterministicRandom(6)
    seen = {rng.randbelow(5) for _ in range(300)}
    assert seen == {0, 1, 2, 3, 4}


def test_randbelow_rejects_nonpositive():
    with pytest.raises(ValueError):
        DeterministicRandom(1).randbelow(0)


def test_randrange_bounds():
    rng = DeterministicRandom(7)
    for _ in range(100):
        assert 10 <= rng.randrange(10, 20) < 20


def test_randrange_empty():
    with pytest.raises(ValueError):
        DeterministicRandom(1).randrange(5, 5)


def test_choice_and_empty_choice():
    rng = DeterministicRandom(8)
    assert rng.choice([3]) == 3
    assert rng.choice("abcd") in "abcd"
    with pytest.raises(IndexError):
        rng.choice([])


def test_sample_without_replacement():
    rng = DeterministicRandom(9)
    population = list(range(50))
    picked = rng.sample(population, 20)
    assert len(picked) == 20
    assert len(set(picked)) == 20
    assert set(picked) <= set(population)


def test_sample_too_large():
    with pytest.raises(ValueError):
        DeterministicRandom(1).sample([1, 2], 3)


def test_shuffle_is_permutation():
    rng = DeterministicRandom(10)
    items = list(range(30))
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items
    assert shuffled != items  # astronomically unlikely to be identity


def test_uniform_and_random_ranges():
    rng = DeterministicRandom(11)
    for _ in range(200):
        assert 0.0 <= rng.random() < 1.0
        assert 2.5 <= rng.uniform(2.5, 3.5) < 3.5


def test_fork_independence():
    root = DeterministicRandom(1)
    a = root.fork("a")
    b = root.fork("b")
    assert a.random_bytes(16) != b.random_bytes(16)


def test_fork_deterministic_across_instances():
    x = DeterministicRandom(1).fork("child").random_bytes(16)
    y = DeterministicRandom(1).fork("child").random_bytes(16)
    assert x == y


def test_fork_does_not_disturb_parent():
    a = DeterministicRandom(1)
    b = DeterministicRandom(1)
    a.fork("ignored")
    assert a.random_bytes(16) == b.random_bytes(16)


def test_reseed_changes_stream():
    a = DeterministicRandom(1)
    b = DeterministicRandom(1)
    a.reseed(b"extra")
    assert a.random_bytes(16) != b.random_bytes(16)


def test_byte_distribution_is_roughly_uniform():
    rng = DeterministicRandom(12)
    data = rng.random_bytes(200_000)
    counts = [0] * 256
    for byte in data:
        counts[byte] += 1
    mean = len(data) / 256
    assert all(0.8 * mean < c < 1.2 * mean for c in counts)


def test_bytes_generated_counter():
    rng = DeterministicRandom(1)
    rng.random_bytes(10)
    rng.random_bytes(20)
    assert rng.bytes_generated == 30
