"""RSA keygen, signing, and primality tests."""

import pytest

from repro.crypto import rsa
from repro.crypto.rng import DeterministicRandom


@pytest.fixture(scope="module")
def keypair():
    return rsa.generate_keypair(512, DeterministicRandom(321))


def test_modulus_size(keypair):
    assert keypair.n.bit_length() == 512


def test_sign_verify_roundtrip(keypair):
    sig = keypair.sign(b"hello world")
    assert keypair.public.verify(b"hello world", sig)


def test_verify_rejects_wrong_message(keypair):
    sig = keypair.sign(b"hello world")
    assert not keypair.public.verify(b"hello worlds", sig)


def test_verify_rejects_tampered_signature(keypair):
    sig = keypair.sign(b"msg")
    assert not keypair.public.verify(b"msg", sig ^ 1)
    assert not keypair.public.verify(b"msg", keypair.n + 5)
    assert not keypair.public.verify(b"msg", -1)


def test_signature_is_deterministic(keypair):
    assert keypair.sign(b"same") == keypair.sign(b"same")


def test_crt_signature_matches_plain_exponentiation(keypair):
    """The CRT shortcut must produce textbook-RSA signatures."""
    from repro.crypto.rsa import _encode_digest

    message = b"crt check"
    expected = pow(_encode_digest(message, keypair.n), keypair.d, keypair.n)
    assert keypair.sign(message) == expected


def test_private_key_consistency(keypair):
    assert keypair.p * keypair.q == keypair.n
    phi = (keypair.p - 1) * (keypair.q - 1)
    assert keypair.d * keypair.e % phi == 1


def test_decrypt_raw_inverts_encrypt(keypair):
    plain = 0x1234567890ABCDEF
    cipher = pow(plain, keypair.e, keypair.n)
    assert keypair.decrypt_raw(cipher) == plain


def test_decrypt_raw_rejects_out_of_range(keypair):
    with pytest.raises(ValueError):
        keypair.decrypt_raw(keypair.n)
    with pytest.raises(ValueError):
        keypair.decrypt_raw(-1)


def test_fingerprint_stable_and_distinct(keypair):
    other = rsa.generate_keypair(512, DeterministicRandom(654))
    assert keypair.public.fingerprint() == keypair.public.fingerprint()
    assert keypair.public.fingerprint() != other.public.fingerprint()
    assert len(keypair.public.fingerprint()) == 8


def test_different_seeds_different_keys():
    a = rsa.generate_keypair(256, DeterministicRandom(1))
    b = rsa.generate_keypair(256, DeterministicRandom(2))
    assert a.n != b.n


def test_keygen_rejects_tiny_modulus():
    with pytest.raises(ValueError):
        rsa.generate_keypair(32, DeterministicRandom(1))


def test_is_probable_prime_known_values():
    rng = DeterministicRandom(9)
    for prime in (2, 3, 5, 101, 65537, 2**61 - 1):
        assert rsa.is_probable_prime(prime, rng)
    for composite in (0, 1, 4, 100, 65537 * 3, (2**31 - 1) * (2**13 - 1)):
        assert not rsa.is_probable_prime(composite, rng)


def test_is_probable_prime_carmichael():
    # 561 = 3·11·17 fools Fermat but not Miller-Rabin.
    assert not rsa.is_probable_prime(561, DeterministicRandom(10))


def test_generate_prime_has_exact_bits():
    rng = DeterministicRandom(11)
    for bits in (64, 128, 256):
        p = rsa.generate_prime(bits, rng)
        assert p.bit_length() == bits
        assert rsa.is_probable_prime(p, rng)


def test_generate_prime_rejects_tiny():
    with pytest.raises(ValueError):
        rsa.generate_prime(4, DeterministicRandom(1))


def test_cross_key_verification_fails(keypair):
    other = rsa.generate_keypair(512, DeterministicRandom(777))
    sig = keypair.sign(b"message")
    assert not other.public.verify(b"message", sig)
