"""Chaos injection end-to-end: faults installed via ``install_chaos``
reach the grabber with the right taxonomy label, and the retry/breaker
machinery reacts on the virtual clock."""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.faults.inject import ImpairedServer, install_chaos
from repro.faults.plan import ImpairmentMatch, ImpairmentPlan, ImpairmentWindow
from repro.faults.retry import RetryPolicy
from repro.netsim.clock import DAY
from repro.obs.metrics import METRICS
from repro.scanner import ZGrabber
from repro.tls.errors import HandshakeFailure


# -- ImpairedServer unit behavior -------------------------------------------


class _StubExchange:
    def accept(self, client_hello_bytes):
        return b"0123456789", "connection"

    def greeting(self):
        return "hello"


class TestImpairedServer:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unsupported handshake fault"):
            ImpairedServer(_StubExchange(), "outage")

    def test_reset_raises_mid_handshake(self):
        server = ImpairedServer(_StubExchange(), "reset")
        assert server.injected_fault == "reset"
        with pytest.raises(HandshakeFailure, match="injected fault"):
            server.accept(b"hello")

    def test_truncate_halves_the_flight(self):
        server = ImpairedServer(_StubExchange(), "truncate")
        flight, connection = server.accept(b"hello")
        assert flight == b"01234"
        assert connection == "connection"

    def test_everything_else_delegates(self):
        server = ImpairedServer(_StubExchange(), "reset")
        assert server.greeting() == "hello"


# -- end-to-end through a real ecosystem ------------------------------------

ALWAYS = dict(start=0.0, end=1000 * DAY)


@pytest.fixture(scope="module")
def ecosystem(request):
    # failure_rate=0 so every failure below is the injected one.
    factory = request.getfixturevalue("small_ecosystem_factory")
    return factory(population=320, failure_rate=0.0)


def _grabber(ecosystem, retry=None):
    return ZGrabber(ecosystem, DeterministicRandom(910), retry=retry)


def _install(ecosystem, *windows, seed=5):
    return install_chaos(ecosystem, ImpairmentPlan(windows=tuple(windows), seed=seed))


def _first(ecosystem, predicate):
    for domain in ecosystem.active_domains(0):
        if predicate(domain):
            return domain
    raise AssertionError("no matching domain")


def _https(ecosystem):
    return _first(
        ecosystem,
        lambda d: d.https and d.behavior.trusted_cert and d.behavior.supports_ecdhe,
    )


def _failure_count(reason):
    return METRICS.counter("scanner.grab.failure", reason=reason).value


class TestInstalledChaos:
    def test_outage_window_classified_as_outage(self, ecosystem):
        _install(ecosystem, ImpairmentWindow(kind="outage", rate=1.0, **ALWAYS))
        before = _failure_count("outage")
        observation = _grabber(ecosystem).grab(_https(ecosystem).name)
        assert not observation.success
        assert "injected outage" in observation.error
        assert _failure_count("outage") == before + 1

    def test_outage_scoped_to_one_domain(self, ecosystem):
        domains = [d for d in ecosystem.active_domains(0)
                   if d.https and d.behavior.trusted_cert
                   and d.behavior.supports_ecdhe][:2]
        assert len(domains) == 2
        down, up = domains
        _install(ecosystem, ImpairmentWindow(
            kind="outage", rate=1.0,
            match=ImpairmentMatch(domains=(down.name,)), **ALWAYS,
        ))
        grabber = _grabber(ecosystem)
        assert not grabber.grab(down.name).success
        assert grabber.grab(up.name).success

    def test_nxdomain_window_hides_existing_name(self, ecosystem):
        target = _https(ecosystem)
        _install(ecosystem, ImpairmentWindow(
            kind="nxdomain", rate=1.0,
            match=ImpairmentMatch(domains=(target.name,)), **ALWAYS,
        ))
        grabber = _grabber(ecosystem)
        observation = grabber.grab(target.name)
        assert not observation.success
        assert observation.error == "nxdomain"
        # Unmatched names still resolve.
        other = _first(
            ecosystem,
            lambda d: d.https and d.behavior.trusted_cert
            and d.behavior.supports_ecdhe and d.name != target.name,
        )
        assert grabber.grab(other.name).success

    def test_total_flap_is_no_backend(self, ecosystem):
        _install(ecosystem, ImpairmentWindow(
            kind="flap", down_fraction=1.0, **ALWAYS,
        ))
        before = _failure_count("no_backend")
        observation = _grabber(ecosystem).grab(_https(ecosystem).name)
        assert not observation.success
        assert "no live backend" in observation.error
        assert _failure_count("no_backend") == before + 1

    def test_reset_window_classified_as_reset(self, ecosystem):
        _install(ecosystem, ImpairmentWindow(kind="reset", rate=1.0, **ALWAYS))
        before = _failure_count("reset")
        injected = METRICS.counter("faults.injected", kind="reset").value
        observation = _grabber(ecosystem).grab(_https(ecosystem).name)
        assert not observation.success
        assert "injected fault" in observation.error
        assert _failure_count("reset") == before + 1
        assert METRICS.counter("faults.injected", kind="reset").value == injected + 1

    def test_truncate_window_classified_as_truncate(self, ecosystem):
        _install(ecosystem, ImpairmentWindow(kind="truncate", rate=1.0, **ALWAYS))
        before = _failure_count("truncate")
        observation = _grabber(ecosystem).grab(_https(ecosystem).name)
        assert not observation.success
        assert _failure_count("truncate") == before + 1

    def test_latency_window_advances_the_virtual_clock(self, ecosystem):
        _install(ecosystem, ImpairmentWindow(
            kind="latency", rate=1.0, delay_seconds=20.0, **ALWAYS,
        ))
        started = ecosystem.clock.now()
        observation = _grabber(ecosystem).grab(_https(ecosystem).name)
        assert observation.success  # latency delays, never fails
        assert ecosystem.clock.now() >= started + 20.0


class TestGrabberRetry:
    def test_retries_backoff_on_virtual_clock(self, ecosystem):
        _install(ecosystem)  # empty plan: only the dark domain fails
        dark = _first(ecosystem, lambda d: not d.https and d.ips)
        grabber = _grabber(ecosystem, retry=RetryPolicy(max_attempts=3))
        started = ecosystem.clock.now()
        observation = grabber.grab(dark.name)
        assert not observation.success
        assert grabber.retries == 2
        # Capped exponential on the *virtual* clock: 2s then 4s.
        assert ecosystem.clock.now() == pytest.approx(started + 6.0)

    def test_retry_budget_is_global_across_grabs(self, ecosystem):
        _install(ecosystem)
        dark = _first(ecosystem, lambda d: not d.https and d.ips)
        grabber = _grabber(
            ecosystem, retry=RetryPolicy(max_attempts=3, retry_budget=1)
        )
        grabber.grab(dark.name)
        grabber.grab(dark.name)
        assert grabber.retries == 1

    def test_breaker_opens_and_skips(self, ecosystem):
        _install(ecosystem)
        dark = _first(ecosystem, lambda d: not d.https and d.ips)
        grabber = _grabber(ecosystem, retry=RetryPolicy(breaker_threshold=2))
        assert "connect" in grabber.grab(dark.name).error
        assert "connect" in grabber.grab(dark.name).error
        skipped = grabber.grab(dark.name)
        assert skipped.error == "breaker open"
        # The skip still counts as a grab (schedule parity).
        assert grabber.grabs == 3
        assert grabber.failures == 3

    def test_nonretryable_reason_is_not_retried(self, ecosystem):
        _install(ecosystem)
        grabber = _grabber(ecosystem, retry=RetryPolicy(max_attempts=4))
        observation = grabber.grab("no-such-name.invalid")
        assert observation.error == "nxdomain"
        assert grabber.retries == 0
