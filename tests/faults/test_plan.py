"""Impairment-plan unit tests: validation, scoping, and — the load-
bearing property — pure-function determinism of every hook."""

import pytest

from repro.faults.plan import (
    FAULT_KINDS,
    PROFILE_SCHEMA,
    ImpairmentMatch,
    ImpairmentPlan,
    ImpairmentWindow,
    seeded_profile,
)
from repro.netsim.clock import DAY, HOUR


def _plan(*windows, seed=7):
    return ImpairmentPlan(windows=tuple(windows), seed=seed)


class TestWindowValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown impairment kind"):
            ImpairmentWindow(kind="meteor", start=0.0, end=DAY)

    def test_end_must_follow_start(self):
        with pytest.raises(ValueError, match="must be after"):
            ImpairmentWindow(kind="outage", start=DAY, end=DAY)

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            ImpairmentWindow(kind="outage", start=0.0, end=DAY, rate=1.5)

    def test_down_fraction_bounds(self):
        with pytest.raises(ValueError, match="down_fraction"):
            ImpairmentWindow(
                kind="flap", start=0.0, end=DAY, down_fraction=-0.1
            )

    def test_active_is_half_open(self):
        window = ImpairmentWindow(kind="outage", start=HOUR, end=2 * HOUR)
        assert not window.active(HOUR - 1)
        assert window.active(HOUR)
        assert window.active(2 * HOUR - 1)
        assert not window.active(2 * HOUR)


class TestMatchScoping:
    def test_empty_match_matches_everything(self):
        match = ImpairmentMatch()
        assert match.match_all
        assert match.matches("anything.example", "10.0.0.1")

    def test_domain_suffix_scopes_per_provider(self):
        match = ImpairmentMatch(domain_suffix=".cf-proxied.example")
        assert match.matches("site1.cf-proxied.example")
        assert not match.matches("site1.wordpress-like.example")

    def test_ip_prefix_scopes_by_address(self):
        match = ImpairmentMatch(ip_prefix="10.1.")
        assert match.matches("", "10.1.2.3")
        assert not match.matches("", "10.2.0.1")

    def test_unknown_match_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown match keys"):
            ImpairmentMatch.from_dict({"domain": "x"})


class TestPlanDeterminism:
    """Every hook must be a pure function of (seed, window, target, time)."""

    def _outage_plan(self, seed=7):
        return _plan(
            ImpairmentWindow(kind="outage", start=0.0, end=DAY, rate=0.5),
            seed=seed,
        )

    def test_connect_fault_is_reproducible(self):
        targets = [f"site{i}.example" for i in range(50)]
        first = [
            self._outage_plan().connect_fault(HOUR, "10.0.0.1", 443, t)
            for t in targets
        ]
        second = [
            self._outage_plan().connect_fault(HOUR, "10.0.0.1", 443, t)
            for t in targets
        ]
        assert first == second
        # rate=0.5 should hit a nontrivial subset, not everything.
        hit = [fault for fault in first if fault is not None]
        assert 0 < len(hit) < len(targets)
        assert all(fault == ("outage", 0.0) for fault in hit)

    def test_seed_changes_affected_subset(self):
        targets = [f"site{i}.example" for i in range(100)]
        a = [self._outage_plan(1).connect_fault(0.0, "", 443, t) for t in targets]
        b = [self._outage_plan(2).connect_fault(0.0, "", 443, t) for t in targets]
        assert a != b

    def test_outage_is_stable_for_whole_window(self):
        plan = self._outage_plan()
        down = [
            t for t in (f"site{i}.example" for i in range(30))
            if plan.connect_fault(0.0, "", 443, t)
        ]
        for hour in range(24):
            now_down = [
                t for t in (f"site{i}.example" for i in range(30))
                if plan.connect_fault(hour * HOUR, "", 443, t)
            ]
            assert now_down == down

    def test_latency_rerolls_per_slot(self):
        plan = _plan(ImpairmentWindow(
            kind="latency", start=0.0, end=DAY, rate=0.3,
            delay_seconds=20.0, period_seconds=HOUR,
        ))
        target = "slow.example"
        by_slot = [
            plan.connect_fault(slot * HOUR + 1, "", 443, target) is not None
            for slot in range(24)
        ]
        # Intermittent: some slots impaired, some clean.
        assert any(by_slot) and not all(by_slot)
        # Within one slot the answer never changes.
        assert (
            plan.connect_fault(1.0, "", 443, target)
            == plan.connect_fault(HOUR - 1, "", 443, target)
        )

    def test_outage_wins_over_latency(self):
        plan = _plan(
            ImpairmentWindow(kind="outage", start=0.0, end=DAY, rate=1.0),
            ImpairmentWindow(kind="latency", start=0.0, end=DAY, rate=1.0),
        )
        assert plan.connect_fault(0.0, "10.0.0.1", 443, "x.example") == (
            "outage", 0.0,
        )

    def test_live_backends_deterministic_and_partial(self):
        plan = _plan(ImpairmentWindow(
            kind="flap", start=0.0, end=DAY, down_fraction=0.5,
            period_seconds=HOUR,
        ))
        live = plan.live_backends(30.0, "10.0.0.1", 443, 64)
        assert live == plan.live_backends(30.0, "10.0.0.1", 443, 64)
        assert 0 < len(live) < 64
        assert live == sorted(live)

    def test_nxdomain_scoped_by_name(self):
        plan = _plan(ImpairmentWindow(
            kind="nxdomain", start=0.0, end=DAY, rate=1.0,
            match=ImpairmentMatch(domains=("gone.example",)),
        ))
        assert plan.nxdomain(0.0, "gone.example")
        assert not plan.nxdomain(0.0, "here.example")
        assert not plan.nxdomain(DAY + 1, "gone.example")

    def test_handshake_fault_kinds(self):
        plan = _plan(ImpairmentWindow(kind="reset", start=0.0, end=DAY, rate=1.0))
        assert plan.handshake_fault(0.0, "10.0.0.1", 443, "x.example") == "reset"
        assert plan.handshake_fault(DAY + 1, "10.0.0.1", 443, "x.example") is None

    def test_inactive_plan_is_silent(self):
        plan = _plan(
            ImpairmentWindow(kind="outage", start=DAY, end=2 * DAY, rate=1.0)
        )
        assert plan.connect_fault(0.0, "10.0.0.1", 443, "x.example") is None
        assert plan.live_backends(0.0, "10.0.0.1", 443, 4) is None
        assert not plan.nxdomain(0.0, "x.example")


class TestProfileSerialization:
    def test_round_trip(self):
        plan = _plan(
            ImpairmentWindow(
                kind="latency", start=0.5 * DAY, end=DAY, rate=0.2,
                delay_seconds=15.0, period_seconds=600.0,
                match=ImpairmentMatch(domain_suffix=".slow.example"),
            ),
            ImpairmentWindow(kind="outage", start=0.0, end=HOUR, rate=0.7),
            seed=42,
        )
        again = ImpairmentPlan.from_profile(plan.to_profile())
        assert again == plan

    def test_unsupported_schema_rejected(self):
        with pytest.raises(ValueError, match="unsupported chaos profile schema"):
            ImpairmentPlan.from_profile({"schema": "repro-chaos/999"})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown profile keys"):
            ImpairmentPlan.from_profile({"schema": PROFILE_SCHEMA, "chaos": 1})
        with pytest.raises(ValueError, match="unknown window keys"):
            ImpairmentPlan.from_profile({
                "schema": PROFILE_SCHEMA,
                "windows": [{"kind": "outage", "start_day": 0,
                             "end_day": 1, "jitter": 2}],
            })

    def test_missing_required_window_keys_rejected(self):
        with pytest.raises(ValueError, match="missing required key"):
            ImpairmentPlan.from_profile({
                "schema": PROFILE_SCHEMA,
                "windows": [{"kind": "outage", "start_day": 0}],
            })


class TestSeededProfile:
    def test_same_seed_same_profile(self):
        assert seeded_profile(11, 14) == seeded_profile(11, 14)
        assert seeded_profile(11, 14) != seeded_profile(12, 14)

    def test_compiles_and_covers_all_kinds(self):
        profile = seeded_profile(3, 14)
        plan = ImpairmentPlan.from_profile(profile)
        kinds = {window.kind for window in plan.windows}
        assert kinds == set(FAULT_KINDS)
        for window in plan.windows:
            assert 0.0 <= window.start < window.end <= 14 * DAY + DAY

    def test_rejects_nonpositive_days(self):
        with pytest.raises(ValueError, match="days must be positive"):
            seeded_profile(1, 0)
