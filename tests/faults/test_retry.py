"""RetryPolicy and CircuitBreaker unit tests."""

import pytest

from repro.faults.retry import (
    DEFAULT_RETRY_POLICY,
    RETRYABLE_REASONS,
    CircuitBreaker,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_default_policy_is_noop(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 1
        assert DEFAULT_RETRY_POLICY.breaker_threshold == 0
        assert not DEFAULT_RETRY_POLICY.enabled

    def test_enabled_flags(self):
        assert RetryPolicy(max_attempts=2).enabled
        assert RetryPolicy(breaker_threshold=3).enabled
        assert not RetryPolicy().enabled

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_seconds=2.0,
            backoff_multiplier=2.0, max_delay_seconds=10.0,
        )
        assert [policy.backoff_delay(n) for n in range(1, 6)] == [
            2.0, 4.0, 8.0, 10.0, 10.0,
        ]

    def test_backoff_attempts_are_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().backoff_delay(0)

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay_seconds": 0.0},
        {"backoff_multiplier": 0.5},
        {"max_delay_seconds": 1.0, "base_delay_seconds": 2.0},
        {"retry_budget": -1},
        {"breaker_threshold": -1},
        {"breaker_cooldown_seconds": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_retryable_reasons_are_substrate_noise_only(self):
        assert "connect_timeout" in RETRYABLE_REASONS
        assert "outage" in RETRYABLE_REASONS
        # Deliberate server answers are never retried.
        assert "nxdomain" not in RETRYABLE_REASONS
        assert "handshake" not in RETRYABLE_REASONS


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown_seconds=60.0)
        assert breaker.record("a.example", False, 0.0) is None
        assert breaker.record("a.example", False, 1.0) is None
        assert breaker.record("a.example", False, 2.0) == "opened"
        assert not breaker.allow("a.example", 3.0)
        assert breaker.open_count == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2, cooldown_seconds=60.0)
        breaker.record("a.example", False, 0.0)
        breaker.record("a.example", True, 1.0)
        assert breaker.record("a.example", False, 2.0) is None
        assert breaker.allow("a.example", 3.0)

    def test_half_open_trial_after_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown_seconds=60.0)
        assert breaker.record("a.example", False, 0.0) == "opened"
        assert not breaker.allow("a.example", 59.0)
        # Cooldown elapsed: one trial allowed; success closes.
        assert breaker.allow("a.example", 61.0)
        assert breaker.record("a.example", True, 61.0) == "closed"
        assert breaker.allow("a.example", 62.0)
        assert breaker.open_count == 0

    def test_half_open_failure_reopens_immediately(self):
        breaker = CircuitBreaker(threshold=2, cooldown_seconds=60.0)
        breaker.record("a.example", False, 0.0)
        assert breaker.record("a.example", False, 1.0) == "opened"
        assert breaker.allow("a.example", 100.0)
        # The single half-open failure reopens — no second chance.
        assert breaker.record("a.example", False, 100.0) == "opened"
        assert not breaker.allow("a.example", 101.0)

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(threshold=1, cooldown_seconds=60.0)
        breaker.record("a.example", False, 0.0)
        assert not breaker.allow("a.example", 1.0)
        assert breaker.allow("b.example", 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0, cooldown_seconds=60.0)
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=1, cooldown_seconds=0.0)
