"""ASCII figure rendering tests."""

from repro.core.cdf import CDF
from repro.figures.plots import ascii_cdf, multi_cdf_table
from repro.netsim.clock import HOUR, MINUTE


def test_ascii_cdf_renders():
    cdf = CDF([60, 300, 300, 3600, 36000])
    text = ascii_cdf(cdf, "Session ID Lifetime")
    assert "Session ID Lifetime" in text
    assert "#" in text
    assert "100%" in text


def test_ascii_cdf_empty():
    assert "(no data)" in ascii_cdf(CDF([]), "Empty")


def test_ascii_cdf_monotone_columns():
    cdf = CDF([1, 10, 100, 1000])
    text = ascii_cdf(cdf, "t", width=40, height=8)
    rows = [line[6:] for line in text.splitlines() if "|" in line]
    # In every row, once '#' starts it continues to the right margin
    # minus trailing blanks — i.e. filled region is a suffix.
    for row in rows:
        stripped = row.rstrip()
        if "#" in stripped:
            first = stripped.index("#")
            assert set(stripped[first:]) == {"#"}


def test_ascii_cdf_single_value():
    text = ascii_cdf(CDF([300.0]), "Single")
    assert "#" in text


def test_ascii_cdf_labels():
    cdf = CDF([MINUTE, HOUR])
    text = ascii_cdf(cdf, "t", x_label="honored lifetime")
    assert "honored lifetime" in text


def test_multi_cdf_table():
    cdfs = {
        "Top 100": CDF([0, 1, 40]),
        "Top 1K": CDF([0, 0, 0, 7]),
    }
    text = multi_cdf_table(cdfs, thresholds=[1, 7, 30], formatter=lambda d: f"{d}d",
                           title="STEK spans by tier")
    assert "STEK spans by tier" in text
    assert "Top 100" in text and "Top 1K" in text
    assert "<=1d" in text and "<=30d" in text
    # Top 100: 2 of 3 values <= 1 day -> 67%.
    assert "67%" in text
