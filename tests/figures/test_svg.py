"""SVG figure rendering tests."""

import xml.etree.ElementTree as ElementTree

import pytest

from repro.core.cdf import CDF
from repro.figures.svg import cdf_svg, treemap_svg
from repro.figures.treemap import layout_treemap
from repro.netsim.clock import DAY, HOUR, MINUTE


def parse(svg: str) -> ElementTree.Element:
    return ElementTree.fromstring(svg)


def test_cdf_svg_is_wellformed_xml():
    svg = cdf_svg({"sessions": CDF([MINUTE, 5 * MINUTE, HOUR, DAY])},
                  title="Figure 1", x_label="honored delay")
    root = parse(svg)
    assert root.tag.endswith("svg")


def test_cdf_svg_contains_title_and_legend():
    svg = cdf_svg({"DHE": CDF([1, 2]), "ECDHE": CDF([1, 2, 3])}, title="Fig 5")
    assert "Fig 5" in svg
    assert "DHE (n=2)" in svg
    assert "ECDHE (n=3)" in svg


def test_cdf_svg_has_one_path_per_series():
    svg = cdf_svg({"a": CDF([1, 10]), "b": CDF([2, 20]), "c": CDF([3])},
                  title="t")
    assert svg.count("<path") == 3


def test_cdf_svg_empty_series():
    svg = cdf_svg({"empty": CDF([])}, title="none")
    parse(svg)  # still well-formed
    assert "empty (n=0)" in svg


def test_cdf_svg_escapes_labels():
    svg = cdf_svg({"<&>": CDF([1])}, title='"quoted" & <tagged>')
    parse(svg)
    assert "&lt;tagged&gt;" in svg


def test_cdf_svg_linear_axis():
    svg = cdf_svg({"days": CDF([0.5, 5, 30])}, title="t", log_x=False,
                  x_formatter=lambda d: f"{d:.0f}d", x_min=0.5)
    parse(svg)
    assert "d</text>" in svg


def test_treemap_svg_wellformed_and_colored():
    cells = layout_treemap([
        ("cloudflare", 600, 12 * HOUR),
        ("tmall", 33, 63 * DAY),
    ])
    svg = treemap_svg(cells, title="Figure 6")
    parse(svg)
    assert "#4ac26b" in svg   # green for sub-24 h
    assert "#d1242f" in svg   # red for 30+ d
    assert "Figure 6" in svg


def test_treemap_svg_tooltips():
    cells = layout_treemap([("google", 90, 14 * HOUR)])
    svg = treemap_svg(cells, title="t")
    assert "<title>google: 90 domains" in svg


def test_treemap_svg_empty():
    svg = treemap_svg([], title="empty")
    parse(svg)


def test_treemap_rect_count():
    groups = [(f"g{i}", 10 + i, HOUR) for i in range(6)]
    svg = treemap_svg(layout_treemap(groups), title="t")
    # 6 cells + background + 4 legend swatches.
    assert svg.count("<rect") == 6 + 1 + 4
