"""Treemap layout tests (Figures 6/7)."""

import pytest

from repro.figures.treemap import (
    layout_treemap,
    render_treemap,
    severity_histogram,
)
from repro.netsim.clock import DAY, HOUR


GROUPS = [
    ("cloudflare", 600, 12 * HOUR),
    ("google", 90, 14 * HOUR),
    ("tmall", 33, 63 * DAY),
    ("fastly", 6, 63 * DAY),
    ("jackhenry", 1, 59 * DAY),
]


def test_cells_cover_unit_square():
    cells = layout_treemap(GROUPS)
    total_area = sum(cell.width * cell.height for cell in cells)
    assert total_area == pytest.approx(1.0)


def test_area_proportional_to_size():
    cells = layout_treemap(GROUPS)
    total = sum(size for _, size, _ in GROUPS)
    for cell in cells:
        assert cell.width * cell.height == pytest.approx(cell.size / total)


def test_cells_within_bounds():
    for cell in layout_treemap(GROUPS):
        assert 0 <= cell.x <= 1 and 0 <= cell.y <= 1
        assert cell.x + cell.width <= 1 + 1e-9
        assert cell.y + cell.height <= 1 + 1e-9


def test_no_overlap():
    cells = layout_treemap(GROUPS)
    for i, a in enumerate(cells):
        for b in cells[i + 1:]:
            overlap_w = min(a.x + a.width, b.x + b.width) - max(a.x, b.x)
            overlap_h = min(a.y + a.height, b.y + b.height) - max(a.y, b.y)
            assert overlap_w <= 1e-9 or overlap_h <= 1e-9


def test_severity_scale():
    cells = {cell.label: cell for cell in layout_treemap(GROUPS)}
    assert cells["cloudflare"].severity == "green"
    assert cells["tmall"].severity == "red"
    assert cells["jackhenry"].severity == "red"


def test_severity_boundaries():
    cells = layout_treemap([
        ("a", 1, 24 * HOUR), ("b", 1, 7 * DAY), ("c", 1, 30 * DAY),
        ("d", 1, 23 * HOUR),
    ])
    by_label = {cell.label: cell.severity for cell in cells}
    assert by_label == {"a": "yellow", "b": "orange", "c": "red", "d": "green"}


def test_empty_layout():
    assert layout_treemap([]) == []


def test_render_treemap():
    text = render_treemap(layout_treemap(GROUPS), title="Figure 6")
    assert "Figure 6" in text
    assert "#" in text   # the 30+ day red groups
    assert "." in text   # the <24 h green groups
    assert "legend" in text


def test_severity_histogram():
    histogram = severity_histogram(layout_treemap(GROUPS))
    assert histogram["red"] == 33 + 6 + 1
    assert histogram["green"] == 690
    assert histogram["orange"] == 0
