"""Shared test helpers: compact TLS rigs and ecosystem builders."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto import dh, ec, rsa
from repro.crypto.rng import DeterministicRandom
from repro.tls.ciphers import MODERN_BROWSER_OFFER
from repro.tls.client import TLSClient
from repro.tls.keyexchange import KexReusePolicy, ReuseMode
from repro.tls.server import ServerConfig, TLSServer, TicketPolicy
from repro.tls.session import SessionCache
from repro.tls.ticket import STEKStore, TicketFormat, generate_stek
from repro.x509 import CertificateAuthority, TrustStore


@dataclass
class Clock:
    """A tiny settable clock for TLS-level tests."""

    value: float = 1000.0

    def now(self) -> float:
        return self.value

    def advance(self, seconds: float) -> None:
        self.value += seconds


@dataclass
class TLSRig:
    """One CA + server + client, wired together for handshake tests."""

    clock: Clock
    ca: CertificateAuthority
    trust: TrustStore
    server: TLSServer
    client: TLSClient
    server_key: rsa.RSAPrivateKey
    stek_store: Optional[STEKStore]
    session_cache: Optional[SessionCache]


def make_rig(
    seed: int = 42,
    hostname: str = "example.com",
    cache_lifetime: Optional[float] = 300.0,
    tickets: bool = True,
    ticket_window: float = 300.0,
    ticket_hint: int = 300,
    ticket_format: TicketFormat = TicketFormat.RFC5077,
    kex_policy: Optional[KexReusePolicy] = None,
    issue_session_ids: bool = True,
    curve: ec.Curve = ec.SECP128R1,
    group: dh.DHGroup = dh.TEST_GROUP,
    suites=MODERN_BROWSER_OFFER,
    stek_retain: int = 1,
) -> TLSRig:
    """Build a one-server test rig with sane fast defaults."""
    rng = DeterministicRandom(seed)
    clock = Clock()
    ca = CertificateAuthority("Test CA", rsa.generate_keypair(512, rng))
    trust = TrustStore()
    trust.add_root(ca.name, ca.public_key)
    server_key = rsa.generate_keypair(512, rng)
    cert = ca.issue([hostname, f"*.{hostname}"], server_key.public, 0, 10**9)
    stek_store = None
    if tickets:
        key_name_length = 4 if ticket_format is TicketFormat.MBEDTLS else 16
        stek_store = STEKStore(
            generate_stek(rng, clock.now(), key_name_length),
            ticket_format=ticket_format,
            retain=stek_retain,
        )
    cache = SessionCache(cache_lifetime) if cache_lifetime is not None else None
    config = ServerConfig(
        certificate=cert,
        private_key=server_key,
        supported_suites=suites,
        session_cache=cache,
        issue_session_ids=issue_session_ids,
        stek_store=stek_store,
        ticket_policy=TicketPolicy(
            lifetime_hint_seconds=ticket_hint,
            accept_window_seconds=ticket_window,
            ticket_format=ticket_format,
        ),
        dh_group=group,
        curve=curve,
        kex_policy=kex_policy or KexReusePolicy(ReuseMode.FRESH),
    )
    server = TLSServer(config, rng.fork("server"), clock.now)
    client = TLSClient(rng.fork("client"), trust, clock.now)
    return TLSRig(
        clock=clock,
        ca=ca,
        trust=trust,
        server=server,
        client=client,
        server_key=server_key,
        stek_store=stek_store,
        session_cache=cache,
    )
