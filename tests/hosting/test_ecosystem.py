"""Ecosystem builder and dynamics tests."""

import pytest

from repro.hosting import EcosystemConfig, build_ecosystem
from repro.hosting.notable import NOTABLE_DOMAINS
from repro.netsim.clock import DAY


@pytest.fixture(scope="module")
def eco():
    return build_ecosystem(EcosystemConfig(population=460, seed=7))


def test_population_size(eco):
    assert len(eco.active_domains(0)) == 460


def test_build_is_deterministic():
    a = build_ecosystem(EcosystemConfig(population=380, seed=3))
    b = build_ecosystem(EcosystemConfig(population=380, seed=3))
    assert [d.name for d in a.active_domains(0)] == [d.name for d in b.active_domains(0)]
    assert [d.rank for d in a.active_domains(0)] == [d.rank for d in b.active_domains(0)]


def test_ranks_unique_and_dense(eco):
    ranks = sorted(d.rank for d in eco.active_domains(0))
    assert len(ranks) == len(set(ranks))
    assert ranks[0] == 1
    # Pinned notable ranks may exceed the scaled population (e.g.
    # symanteccloud.com at its paper rank 4120); everything else is
    # densely packed into 1..population.
    within = [r for r in ranks if r <= 460]
    assert len(within) >= 440


def test_notable_domains_pinned(eco):
    for spec in NOTABLE_DOMAINS:
        domain = eco.domain(spec.name)
        assert domain.rank == spec.rank
        assert domain.notable


def test_provider_domains_exist(eco):
    providers = {d.provider for d in eco.domains if d.provider}
    assert "cloudflare" in providers and "google" in providers


def test_provider_shares_stek_store(eco):
    cloudflare = [d for d in eco.domains if d.provider == "cloudflare"]
    stores = {id(d.stek_store) for d in cloudflare}
    assert len(stores) == 1  # one STEK group


def test_cloudflare_two_cache_groups(eco):
    cloudflare = [d for d in eco.domains if d.provider == "cloudflare"]
    caches = {id(d.session_cache) for d in cloudflare}
    assert len(caches) == 2


def test_google_named_services_present(eco):
    google = eco.domain("google.com")
    assert google.provider == "google"
    youtube = eco.domain("youtube.com")
    assert id(google.stek_store) == id(youtube.stek_store)


def test_yandex_group_never_rotates(eco):
    yandex = eco.domain("yandex.ru")
    key_before = yandex.stek_store.current.key_name
    eco.advance_days(5)
    assert yandex.stek_store.current.key_name == key_before


def test_rotations_fire(eco_factory=None):
    eco2 = build_ecosystem(EcosystemConfig(population=400, seed=9))
    google = eco2.domain("google.com")
    key_before = google.stek_store.current.key_name
    eco2.advance_days(1)  # google rotates every 14 h
    assert google.stek_store.current.key_name != key_before
    assert eco2.stek_rotations_performed > 0


def test_notable_stek_rotation_schedule():
    eco2 = build_ecosystem(EcosystemConfig(population=400, seed=10))
    fc2 = eco2.domain("fc2.com")  # rotates every 18 days
    key_before = fc2.stek_store.current.key_name
    eco2.advance_days(17)
    assert fc2.stek_store.current.key_name == key_before
    eco2.advance_days(2)
    assert fc2.stek_store.current.key_name != key_before


def test_churn_replaces_domains():
    eco2 = build_ecosystem(
        EcosystemConfig(population=400, seed=11, churn_daily_fraction=0.02)
    )
    day0 = {d.name for d in eco2.active_domains(0)}
    eco2.advance_days(5)
    day5 = {d.name for d in eco2.active_domains(5)}
    assert len(day5) == len(day0)
    assert day0 != day5
    left = day0 - day5
    assert left and all(name.startswith("site") for name in left)


def test_churn_never_touches_notable_or_provider():
    eco2 = build_ecosystem(
        EcosystemConfig(population=400, seed=12, churn_daily_fraction=0.05)
    )
    eco2.advance_days(6)
    active = {d.name for d in eco2.active_domains(6)}
    for spec in NOTABLE_DOMAINS:
        assert spec.name in active


def test_always_present_excludes_churned():
    eco2 = build_ecosystem(
        EcosystemConfig(population=400, seed=13, churn_daily_fraction=0.02)
    )
    eco2.advance_days(5)
    always = {d.name for d in eco2.always_present_domains(5)}
    active0 = {d.name for d in eco2.active_domains(0)}
    active5 = {d.name for d in eco2.active_domains(5)}
    assert always <= active0 and always <= active5


def test_alexa_list_sorted_by_rank(eco):
    listing = eco.alexa_list(0)
    assert listing == sorted(listing)


def test_https_domains_have_endpoints(eco):
    for domain in eco.active_domains(0)[:80]:
        if not domain.https:
            continue
        address = eco.dns.resolve_all(domain.name)[0]
        assert eco.network.endpoint_at(address) is not None


def test_dark_domains_unreachable(eco):
    from repro.netsim.dns import NXDomainError
    from repro.netsim.network import ConnectTimeout

    dark = [d for d in eco.active_domains(0) if not d.https]
    assert dark
    for domain in dark[:10]:
        try:
            address = eco.dns.resolve_all(domain.name)[0]
        except NXDomainError:
            continue
        assert eco.network.endpoint_at(address) is None


def test_blacklist_populated(eco):
    assert eco.blacklist
    assert all(eco.domain(name).provider is None for name in eco.blacklist)


def test_mx_records_present(eco):
    from repro.hosting.ecosystem import GOOGLE_MX_HOST

    pointing = sum(
        1 for _, name in eco.alexa_list(0) if GOOGLE_MX_HOST in eco.dns.mx(name)
    )
    assert pointing > 0


def test_ground_truth_group_accessors(eco):
    stek_groups = eco.ground_truth_stek_groups()
    assert any(len(members) > 10 for members in stek_groups.values())
    cache_groups = eco.ground_truth_cache_groups()
    assert any(len(members) > 10 for members in cache_groups.values())


def test_population_too_small_rejected():
    with pytest.raises(ValueError):
        build_ecosystem(EcosystemConfig(population=100, seed=1))


def test_time_cannot_go_backwards(eco):
    with pytest.raises(ValueError):
        eco.advance_to(eco.clock.now() - 1)
