"""Notable-domain table tests."""

from repro.hosting.notable import NOTABLE_BY_NAME, NOTABLE_DOMAINS, STUDY_DAYS
from repro.netsim.clock import DAY


def test_names_and_ranks_unique():
    names = [d.name for d in NOTABLE_DOMAINS]
    ranks = [d.rank for d in NOTABLE_DOMAINS]
    assert len(names) == len(set(names))
    assert len(ranks) == len(set(ranks))


def test_paper_table2_rows_present():
    for name, days in [
        ("yahoo.com", 63), ("qq.com", 56), ("taobao.com", 63),
        ("pinterest.com", 63), ("netflix.com", 54), ("imgur.com", 63),
        ("fc2.com", 18), ("pornhub.com", 29),
    ]:
        assert NOTABLE_BY_NAME[name].stek_days == days


def test_paper_table3_rows_present():
    for name, days in [
        ("netflix.com", 59), ("ebay.in", 7), ("cbssports.com", 60),
        ("cookpad.com", 63), ("kayak.com", 13),
    ]:
        assert NOTABLE_BY_NAME[name].dhe_days == days


def test_paper_table4_rows_present():
    for name, days in [
        ("whatsapp.com", 62), ("vice.com", 26), ("9gag.com", 31),
        ("woot.com", 62), ("leagueoflegends.com", 27),
    ]:
        assert NOTABLE_BY_NAME[name].ecdhe_days == days


def test_rank_ordering_matches_paper():
    assert NOTABLE_BY_NAME["yahoo.com"].rank == 5
    assert NOTABLE_BY_NAME["netflix.com"].rank == 31
    assert NOTABLE_BY_NAME["whatsapp.com"].rank == 74


def test_stek_rotation_interval_reproduces_span():
    fc2 = NOTABLE_BY_NAME["fc2.com"]
    assert fc2.stek_rotation == 18 * DAY
    yahoo = NOTABLE_BY_NAME["yahoo.com"]
    assert yahoo.stek_rotation is None  # never rotates within the study


def test_default_rotation_for_daily_rotators():
    assert NOTABLE_BY_NAME["twitter.com"].stek_rotation == DAY
    assert NOTABLE_BY_NAME["baidu.com"].stek_rotation == DAY


def test_reuse_lifetime_semantics():
    netflix = NOTABLE_BY_NAME["netflix.com"]
    assert netflix.dhe_reuse == 59 * DAY
    cookpad = NOTABLE_BY_NAME["cookpad.com"]
    assert cookpad.dhe_reuse == float("inf")  # 63 d ≈ never within study
    yahoo = NOTABLE_BY_NAME["yahoo.com"]
    assert yahoo.dhe_reuse is None  # no DHE reuse reported


def test_whatsapp_has_no_dhe():
    assert not NOTABLE_BY_NAME["whatsapp.com"].supports_dhe


def test_facebook_long_session_cache():
    assert NOTABLE_BY_NAME["facebook.com"].session_cache_lifetime > 24 * 3600


def test_spans_within_study_bounds():
    for domain in NOTABLE_DOMAINS:
        for days in (domain.stek_days, domain.dhe_days, domain.ecdhe_days):
            if days is not None:
                assert 0 < days <= STUDY_DAYS
