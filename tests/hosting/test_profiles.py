"""Behavior-profile sampling tests (calibration sanity)."""

from repro.crypto.rng import DeterministicRandom
from repro.hosting.profiles import (
    DomainBehavior,
    P_HTTPS,
    P_ISSUE_SESSION_IDS,
    P_ISSUE_TICKETS,
    sample_behavior,
    weighted_choice,
)
from repro.netsim.clock import DAY, HOUR, MINUTE


def sample_many(n=4000, seed=3):
    rng = DeterministicRandom(seed)
    return [sample_behavior(rng) for _ in range(n)]


def test_weighted_choice_respects_weights():
    rng = DeterministicRandom(1)
    table = (("a", 0.9), ("b", 0.1))
    draws = [weighted_choice(rng, table) for _ in range(2000)]
    a_count = draws.count("a")
    assert 1650 < a_count < 1950


def test_weighted_choice_single_entry():
    rng = DeterministicRandom(2)
    assert weighted_choice(rng, (("only", 1.0),)) == "only"


def test_https_rate_near_target():
    samples = sample_many()
    rate = sum(1 for s in samples if s.https) / len(samples)
    assert abs(rate - P_HTTPS) < 0.03


def test_non_https_domains_have_no_tls_behavior():
    samples = [s for s in sample_many() if not s.https]
    assert samples
    assert all(not s.trusted_cert for s in samples)


def test_session_id_issue_rate():
    https = [s for s in sample_many() if s.https]
    rate = sum(1 for s in https if s.issue_session_ids) / len(https)
    assert abs(rate - P_ISSUE_SESSION_IDS) < 0.02


def test_session_resume_rate_near_83_percent():
    https = [s for s in sample_many() if s.https]
    rate = sum(1 for s in https if s.resumes_session_ids) / len(https)
    assert 0.78 < rate < 0.88


def test_ticket_issue_rate():
    https = [s for s in sample_many() if s.https]
    rate = sum(1 for s in https if s.tickets) / len(https)
    assert abs(rate - P_ISSUE_TICKETS) < 0.03


def test_cache_lifetime_distribution_shape():
    """Paper Fig. 1: 61% < 5 min... meaning <= 300 s here, 82% <= 1 h."""
    caching = [
        s.session_cache_lifetime
        for s in sample_many(8000)
        if s.https and s.resumes_session_ids
    ]
    at_most_5m = sum(1 for v in caching if v <= 5 * MINUTE) / len(caching)
    at_most_1h = sum(1 for v in caching if v <= HOUR) / len(caching)
    assert 0.55 < at_most_5m < 0.68
    assert 0.77 < at_most_1h < 0.88


def test_stek_rotation_distribution_shape():
    """§6.1: of issuers, ~36% >= 1 day, ~22% > 7 d, ~10% > 30 d."""
    issuers = [s for s in sample_many(8000) if s.https and s.tickets]
    rotations = [s.stek_rotation_seconds for s in issuers]
    def frac(predicate):
        return sum(1 for r in rotations if predicate(r)) / len(rotations)
    over_1d = frac(lambda r: r is None or r > DAY)
    over_7d = frac(lambda r: r is None or r > 7 * DAY)
    over_30d = frac(lambda r: r is None or r > 30 * DAY)
    assert 0.28 < over_1d < 0.45
    assert 0.14 < over_7d < 0.30
    assert 0.05 < over_30d < 0.16


def test_kex_reuse_rates():
    https = [s for s in sample_many(8000) if s.https]
    dhe_capable = [s for s in https if s.supports_dhe]
    ecdhe_capable = [s for s in https if s.supports_ecdhe]
    dhe_rate = sum(1 for s in dhe_capable if s.dhe_reuse_seconds is not None) / len(dhe_capable)
    ecdhe_rate = sum(1 for s in ecdhe_capable if s.ecdhe_reuse_seconds is not None) / len(ecdhe_capable)
    assert 0.05 < dhe_rate < 0.10      # target 7.2%
    assert 0.12 < ecdhe_rate < 0.19    # target 15.5%


def test_reuse_never_is_infinite_not_none():
    samples = sample_many(8000)
    reusers = [s.ecdhe_reuse_seconds for s in samples if s.ecdhe_reuse_seconds is not None]
    assert any(v == float("inf") for v in reusers)
    assert all(v > 0 for v in reusers)


def test_hint_mostly_matches_window():
    issuers = [s for s in sample_many(6000) if s.https and s.tickets]
    matching = sum(
        1 for s in issuers if s.ticket_hint_seconds == int(s.ticket_window_seconds)
    )
    assert matching / len(issuers) > 0.9


def test_some_hints_unspecified():
    issuers = [s for s in sample_many(8000) if s.https and s.tickets]
    unspecified = sum(1 for s in issuers if s.ticket_hint_seconds == 0)
    assert unspecified > 0


def test_default_behavior_is_sane():
    behavior = DomainBehavior()
    assert behavior.https and behavior.trusted_cert
    assert behavior.resumes_session_ids
    assert behavior.ticket_window_seconds == 5 * MINUTE


def test_sampling_is_deterministic():
    a = sample_many(100, seed=5)
    b = sample_many(100, seed=5)
    assert a == b
