"""Provider catalog tests."""

from repro.hosting.providers import PROVIDERS, PROVIDERS_BY_NAME
from repro.netsim.clock import DAY, HOUR


def test_catalog_names_unique():
    names = [spec.name for spec in PROVIDERS]
    assert len(names) == len(set(names))
    assert PROVIDERS_BY_NAME["cloudflare"].asn == 13335


def test_asns_unique():
    asns = [spec.asn for spec in PROVIDERS]
    assert len(asns) == len(set(asns))


def test_cluster_weights_positive():
    for spec in PROVIDERS:
        assert spec.clusters
        assert all(cluster.weight > 0 for cluster in spec.clusters)


def test_scaled_customers_proportional_with_floor():
    cloudflare = PROVIDERS_BY_NAME["cloudflare"]
    assert cloudflare.scaled_customers(1_000_000) == cloudflare.customers_at_1m
    tiny = cloudflare.scaled_customers(1000)
    assert tiny == max(cloudflare.min_customers, round(cloudflare.customers_at_1m / 1000))
    assert cloudflare.scaled_customers(10) == cloudflare.min_customers


def test_cloudflare_shape_matches_paper():
    spec = PROVIDERS_BY_NAME["cloudflare"]
    # Two session-cache groups, one shared STEK (§5.1/§5.2).
    assert len({c.cache_group for c in spec.clusters}) == 2
    assert len({c.stek_group for c in spec.clusters}) == 1
    assert spec.ticket_window == 18 * HOUR
    assert spec.stek_rotation is not None and spec.stek_rotation < DAY


def test_google_shape_matches_paper():
    spec = PROVIDERS_BY_NAME["google"]
    assert spec.stek_rotation == 14 * HOUR
    assert spec.ticket_window == 28 * HOUR
    assert len({c.cache_group for c in spec.clusters}) == 6
    assert len({c.stek_group for c in spec.clusters}) == 1
    named = [n for c in spec.clusters for n in c.named_domains]
    assert "google.com" in named and "youtube.com" in named


def test_never_rotating_providers():
    for name in ("tmall", "fastly", "yandex"):
        assert PROVIDERS_BY_NAME[name].stek_rotation is None


def test_jackhenry_rotation_once_during_study():
    spec = PROVIDERS_BY_NAME["jackhenry"]
    assert spec.stek_rotation == 59 * DAY
    assert spec.stek_retain == 0


def test_dh_sharing_providers_have_dh_groups():
    for name in ("squarespace", "livejournal", "jimdo", "affinity", "hostway"):
        spec = PROVIDERS_BY_NAME[name]
        assert any(c.dh_group is not None for c in spec.clusters), name


def test_hostway_is_dhe_only():
    spec = PROVIDERS_BY_NAME["hostway"]
    assert spec.supports_dhe and not spec.supports_ecdhe
    # One shared DH group across all four clusters.
    assert len({c.dh_group for c in spec.clusters}) == 1


def test_tumblr_three_separate_stek_groups():
    spec = PROVIDERS_BY_NAME["tumblr"]
    assert len({c.stek_group for c in spec.clusters}) == 3


def test_group_ordering_preserved_by_scaling():
    """Table 6 ordering: cloudflare > google > automattic > tmall..."""
    sizes = {
        name: PROVIDERS_BY_NAME[name].scaled_customers(50_000)
        for name in ("cloudflare", "google", "automattic", "tmall", "godaddy")
    }
    assert sizes["cloudflare"] > sizes["google"] > sizes["automattic"]
    assert sizes["automattic"] >= sizes["tmall"] > sizes["godaddy"]
