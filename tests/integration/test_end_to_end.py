"""End-to-end validation: scanner + analysis vs. ecosystem ground truth.

These tests close the loop the original paper could not: because the
population is synthetic, every estimate (spans, groups, windows) can be
checked against the configured truth.
"""

from repro import core
from repro.netsim.clock import DAY, HOUR, MINUTE

from conftest import SMALL_DAYS


def stek_spans(dataset):
    return core.stek_spans(dataset.ticket_daily, set(dataset.always_present))


def test_never_rotating_domains_span_whole_study(small_study):
    ecosystem, dataset = small_study
    spans = stek_spans(dataset)
    for name in ("yahoo.com", "taobao.com", "imgur.com", "yandex.ru"):
        assert spans[name].max_span_days == SMALL_DAYS - 1, name


def test_daily_rotators_never_span_days(small_study):
    ecosystem, dataset = small_study
    spans = stek_spans(dataset)
    for name in ("twitter.com", "baidu.com"):
        assert spans[name].max_span_days <= 1, name


def test_google_sub_daily_rotation_observed(small_study):
    _, dataset = small_study
    spans = stek_spans(dataset)
    entry = spans["google.com"]
    # 14 h rotation: each key is seen on at most 2 adjacent scan days.
    assert entry.max_span_days <= 1
    assert len(entry.spans) >= SMALL_DAYS // 2


def test_span_estimator_tolerates_lb_jitter(small_study):
    """Domains with two unsynchronized STEK backends must still show
    spans bounded by their rotation interval, not fragmented."""
    ecosystem, dataset = small_study
    spans = stek_spans(dataset)
    jittered = [
        d for d in ecosystem.domains
        if d.extra_stek_stores and d.active_on(0) and d.joined_day == 0
        and (d.left_day is None or d.left_day >= SMALL_DAYS)
        and d.behavior.stek_rotation_seconds is None
    ]
    for domain in jittered:
        if domain.name in spans:
            assert spans[domain.name].max_span_days >= SMALL_DAYS - 3


def test_stek_span_matches_ground_truth_rotation(small_study):
    """For every measured domain: observed span never exceeds what its
    configured rotation interval (+ jitter margin) allows."""
    ecosystem, dataset = small_study
    spans = stek_spans(dataset)
    for name, entry in spans.items():
        domain = ecosystem.domain(name)
        rotation = domain.behavior.stek_rotation_seconds
        if rotation is None:
            continue  # never rotates: any span is legitimate
        allowed_days = rotation / DAY + 1.01  # phase + day-granularity slack
        assert entry.max_span_days <= allowed_days, (
            name, entry.max_span_days, rotation
        )


def test_kex_span_never_exceeds_ground_truth(small_study):
    ecosystem, dataset = small_study
    always = set(dataset.always_present)
    for kind, field in (("dhe", "dhe_reuse_seconds"), ("ecdhe", "ecdhe_reuse_seconds")):
        observations = dataset.dhe_daily if kind == "dhe" else dataset.ecdhe_daily
        spans = core.kex_spans(observations, always, kind=kind)
        for name, entry in spans.items():
            domain = ecosystem.domain(name)
            reuse = getattr(domain.behavior, field)
            if reuse is None:
                assert entry.max_span_days == 0, (name, kind)
            elif reuse != float("inf"):
                assert entry.max_span_days <= reuse / DAY + 1.01, (name, kind)


def test_notable_dhe_spans_recovered(small_study):
    _, dataset = small_study
    always = set(dataset.always_present)
    spans = core.kex_spans(dataset.dhe_daily, always, kind="dhe")
    # cookpad reuses its DHE value forever; within an 8-day study the
    # observed span is the full window.
    assert spans["cookpad.com"].max_span_days == SMALL_DAYS - 1
    assert spans["netflix.com"].max_span_days == SMALL_DAYS - 1  # 59 d truth


def test_notable_ecdhe_spans_recovered(small_study):
    _, dataset = small_study
    always = set(dataset.always_present)
    spans = core.kex_spans(dataset.ecdhe_daily, always, kind="ecdhe")
    for name in ("whatsapp.com", "woot.com", "mint.com"):
        assert spans[name].max_span_days == SMALL_DAYS - 1, name


def test_stek_groups_match_ground_truth(small_study):
    ecosystem, dataset = small_study
    grouping = core.groups_from_shared_identifiers(
        [dataset.ticket_support, dataset.ticket_30min], "stek",
        dataset.domain_asn, dataset.as_names,
    )
    truth = {
        frozenset(members)
        for members in ecosystem.ground_truth_stek_groups().values()
        if len(members) > 1
    }
    measured_multi = [g for g in grouping.groups if len(g) > 1]
    for group in measured_multi:
        # Every measured multi-domain group is a subset of one true group
        # (sampling may miss members; it must never merge two groups).
        assert any(group.domains <= true for true in truth), group.label


def test_largest_stek_group_is_cloudflare(small_study):
    ecosystem, dataset = small_study
    grouping = core.groups_from_shared_identifiers(
        [dataset.ticket_support, dataset.ticket_30min], "stek",
        dataset.domain_asn, dataset.as_names,
    )
    rows = core.largest_group_rows(grouping, 3)
    assert rows[0][0].startswith("cloudflare")
    labels = [label.split(" #")[0] for label, _ in rows]
    assert "google" in labels


def test_cache_groups_subsets_of_truth(small_study):
    ecosystem, dataset = small_study
    grouping = core.groups_from_edges(
        dataset.cache_edges, dataset.crossdomain_targets,
        dataset.domain_asn, dataset.as_names,
    )
    truth = {
        frozenset(members)
        for members in ecosystem.ground_truth_cache_groups().values()
    }
    for group in grouping.groups:
        if len(group) == 1:
            continue
        assert any(group.domains <= true for true in truth), sorted(group.domains)[:3]


def test_cache_group_count_mostly_singletons(small_study):
    _, dataset = small_study
    grouping = core.groups_from_edges(dataset.cache_edges, dataset.crossdomain_targets)
    # Paper: 86% of cache service groups contained a single domain.
    assert grouping.singleton_count / grouping.group_count > 0.5


def test_dh_groups_only_sharing_providers(small_study):
    ecosystem, dataset = small_study
    grouping = core.groups_from_shared_identifiers(
        [dataset.dhe_support, dataset.dhe_30min,
         dataset.ecdhe_support, dataset.ecdhe_30min], "dh",
        dataset.domain_asn, dataset.as_names,
    )
    sharing_providers = {"squarespace", "livejournal", "jimdo", "affinity",
                         "distil", "atypon", "linecorp", "digitalinsight",
                         "edgecast", "hostway"}
    for group in grouping.groups:
        if len(group) <= 1:
            continue
        providers = {ecosystem.domain(d).provider for d in group.domains}
        assert providers <= sharing_providers, (group.label, providers)


def test_session_probe_lifetimes_match_ground_truth(small_study):
    ecosystem, dataset = small_study
    for probe in dataset.session_probes:
        if probe.max_success_delay is None:
            continue
        domain = ecosystem.domain(probe.domain)
        truth = domain.behavior.session_cache_lifetime
        assert truth is not None
        # Honored lifetime never exceeds truth + one probe interval.
        assert probe.max_success_delay <= truth + 5 * MINUTE + 2


def test_ticket_probe_lifetimes_match_ground_truth(small_study):
    ecosystem, dataset = small_study
    for probe in dataset.ticket_probes:
        if probe.max_success_delay is None:
            continue
        domain = ecosystem.domain(probe.domain)
        truth = domain.behavior.ticket_window_seconds
        assert probe.max_success_delay <= truth + 5 * MINUTE + 2


def test_combined_windows_lower_bound_ground_truth(small_study):
    """Measured combined windows are sound lower bounds on true exposure."""
    ecosystem, dataset = small_study
    always = set(dataset.always_present)
    windows = core.combine_windows(
        stek_spans_by_domain=stek_spans(dataset),
        session_lifetimes=core.session_lifetime_by_domain(dataset.session_probes),
        dhe_spans_by_domain=core.kex_spans(dataset.dhe_daily, always, kind="dhe"),
        ecdhe_spans_by_domain=core.kex_spans(dataset.ecdhe_daily, always, kind="ecdhe"),
    )
    for name, window in windows.items():
        domain = ecosystem.domain(name)
        behavior = domain.behavior
        true_ticket = (
            float("inf") if behavior.stek_rotation_seconds is None
            else behavior.stek_rotation_seconds
        ) if behavior.tickets else 0.0
        true_cache = behavior.session_cache_lifetime or 0.0
        true_dh = max(
            behavior.dhe_reuse_seconds or 0.0, behavior.ecdhe_reuse_seconds or 0.0
        )
        ceiling = max(true_ticket + DAY + HOUR, true_cache + 6 * MINUTE,
                      true_dh + DAY + HOUR)
        assert window.combined <= ceiling, (name, window.combined, ceiling)


def test_exposure_summary_nontrivial(small_study):
    _, dataset = small_study
    always = set(dataset.always_present)
    windows = core.combine_windows(
        stek_spans_by_domain=stek_spans(dataset),
        session_lifetimes=core.session_lifetime_by_domain(dataset.session_probes),
        dhe_spans_by_domain=core.kex_spans(dataset.dhe_daily, always, kind="dhe"),
        ecdhe_spans_by_domain=core.kex_spans(dataset.ecdhe_daily, always, kind="ecdhe"),
    )
    summary = core.summarize_exposure(windows)
    assert summary.domains > 200
    # Even in an 8-day study, a meaningful slice shows >24 h exposure.
    # (>7 d is unobservable here: an 8-day window caps spans at exactly
    # 7 days and the threshold is strict, mirroring the paper's lower-
    # bound framing.)
    assert summary.fraction_over_24_hours > 0.10
    assert summary.over_7_days == 0


def test_table1_waterfall_is_monotone(small_study):
    _, dataset = small_study
    for kind, observations in (
        ("ticket", dataset.ticket_support),
        ("dhe", dataset.dhe_support),
        ("ecdhe", dataset.ecdhe_support),
    ):
        list_size, non_blacklisted = dataset.list_sizes[kind]
        waterfall = core.support_waterfall(observations, kind, list_size, non_blacklisted)
        counts = [count for _, count in waterfall.rows()]
        assert counts == sorted(counts, reverse=True), kind
        assert waterfall.supporting > 0
