"""Passive collector and retrospective-decryption tests."""

import pytest

from helpers import make_rig

from repro.nationstate.adversary import (
    NationStateAttacker,
    PassiveCollector,
    reconstruct_connection,
)
from repro.tls.keyexchange import KexReusePolicy, ReuseMode
from repro.tls.ticket import generate_stek


def captured_connection(rig, domain="example.com", request=b"GET /secret", **kwargs):
    result = rig.client.connect(rig.server, domain, capture=True, **kwargs)
    assert result.ok, result.error
    rig.client.exchange_data(result, request)
    return result


def test_reconstruction_from_wire_bytes():
    rig = make_rig()
    result = captured_connection(rig)
    recorded = reconstruct_connection("example.com", 0.0, result.captured)
    assert recorded.client_random == result.client_random
    assert recorded.server_random == result.server_random
    assert recorded.cipher_suite is result.cipher_suite
    assert recorded.issued_ticket == result.new_ticket.ticket
    assert recorded.server_kex_ecdhe is not None
    assert recorded.client_kex_public
    assert len(recorded.app_records) == 2  # request + response


def test_collector_accumulates():
    rig = make_rig()
    collector = PassiveCollector()
    for _ in range(3):
        result = captured_connection(rig)
        collector.intercept("example.com", rig.clock.now(), result.captured)
    assert len(collector) == 3


def test_stek_theft_decrypts_recorded_traffic():
    rig = make_rig()
    collector = PassiveCollector()
    result = captured_connection(rig, request=b"GET /inbox HTTP/1.1")
    collector.intercept("example.com", rig.clock.now(), result.captured)

    attacker = NationStateAttacker()
    attacker.steal_steks(rig.stek_store.all_keys)
    outcomes = attacker.decrypt_all(collector)
    assert outcomes[0].success
    assert outcomes[0].method == "stek"
    assert any(b"GET /inbox" in p for p in outcomes[0].plaintexts)
    assert outcomes[0].master_secret == result.session.master_secret


def test_wrong_stek_fails():
    rig = make_rig()
    result = captured_connection(rig)
    recorded = reconstruct_connection("example.com", 0.0, result.captured)
    attacker = NationStateAttacker()
    attacker.steal_steks([generate_stek(rig.client._rng, 0.0)])
    assert not attacker.decrypt(recorded).success


def test_no_secrets_no_decryption():
    rig = make_rig()
    result = captured_connection(rig)
    recorded = reconstruct_connection("example.com", 0.0, result.captured)
    outcome = NationStateAttacker().decrypt(recorded)
    assert not outcome.success
    assert "no stolen secret" in outcome.detail


def test_rotated_stek_still_decrypts_older_capture():
    """Stealing current+retained keys covers the acceptance window."""
    rig = make_rig(stek_retain=1)
    result = captured_connection(rig)
    recorded = reconstruct_connection("example.com", 0.0, result.captured)
    rig.stek_store.rotate(generate_stek(rig.client._rng, 100.0))
    attacker = NationStateAttacker()
    attacker.steal_steks(rig.stek_store.all_keys)  # current + previous
    assert attacker.decrypt(recorded).success


def test_session_cache_theft_decrypts():
    rig = make_rig(tickets=False, cache_lifetime=3600.0)
    collector = PassiveCollector()
    result = captured_connection(rig, request=b"POST /login")
    collector.intercept("example.com", rig.clock.now(), result.captured)

    attacker = NationStateAttacker()
    stolen = attacker.steal_session_cache(rig.session_cache, now=rig.clock.now())
    assert stolen == 1
    outcome = attacker.decrypt_all(collector)[0]
    assert outcome.success
    assert outcome.method == "session_cache"
    assert any(b"POST /login" in p for p in outcome.plaintexts)


def test_expired_cache_yields_nothing():
    rig = make_rig(tickets=False, cache_lifetime=300.0)
    result = captured_connection(rig)
    recorded = reconstruct_connection("example.com", 0.0, result.captured)
    rig.clock.advance(301)
    attacker = NationStateAttacker()
    assert attacker.steal_session_cache(rig.session_cache, rig.clock.now()) == 0
    assert not attacker.decrypt(recorded).success


def test_dh_value_theft_decrypts_ecdhe():
    rig = make_rig(
        tickets=False, cache_lifetime=None,
        kex_policy=KexReusePolicy(ReuseMode.PROCESS_LIFETIME),
    )
    collector = PassiveCollector()
    result = captured_connection(rig, request=b"GET /account")
    collector.intercept("example.com", rig.clock.now(), result.captured)

    attacker = NationStateAttacker()
    attacker.steal_kex_values(ec_keypair=rig.server.kex_cache.current_ec)
    outcome = attacker.decrypt_all(collector)[0]
    assert outcome.success
    assert outcome.method == "dh"
    assert any(b"GET /account" in p for p in outcome.plaintexts)


def test_dh_value_theft_decrypts_dhe():
    from repro.tls.ciphers import DHE_ONLY_OFFER

    rig = make_rig(
        tickets=False, cache_lifetime=None,
        kex_policy=KexReusePolicy(ReuseMode.PROCESS_LIFETIME),
    )
    result = captured_connection(rig, offer=DHE_ONLY_OFFER, request=b"DHE data")
    recorded = reconstruct_connection("example.com", 0.0, result.captured)
    attacker = NationStateAttacker()
    attacker.steal_kex_values(dh_keypair=rig.server.kex_cache.current_dh)
    outcome = attacker.decrypt(recorded)
    assert outcome.success and outcome.method == "dh"


def test_rotated_dh_value_fails():
    """A fresh-value server leaks nothing useful after the connection."""
    rig = make_rig(tickets=False, cache_lifetime=None)  # FRESH policy
    result = captured_connection(rig)
    recorded = reconstruct_connection("example.com", 0.0, result.captured)
    # The value cached *now* post-dates the recorded connection.
    attacker = NationStateAttacker()
    later = rig.client.connect(rig.server, "example.com")
    assert later.ok
    attacker.steal_kex_values(ec_keypair=rig.server.kex_cache.current_ec)
    assert not attacker.decrypt(recorded).success


def test_forward_secret_connection_without_shortcuts_is_safe():
    """No tickets, no cache, fresh values: a *later* compromise of the
    server's state yields nothing about the recorded connection.

    (A fresh-per-handshake server still holds the last value until the
    next handshake overwrites it — the paper's point that "we cannot
    tell whether it has securely erased the secrets" — so the theft
    here happens after a subsequent handshake.)"""
    rig = make_rig(tickets=False, cache_lifetime=None)
    result = captured_connection(rig)
    recorded = reconstruct_connection("example.com", 0.0, result.captured)
    later = rig.client.connect(rig.server, "example.com")  # overwrites slot
    assert later.ok
    attacker = NationStateAttacker()
    attacker.steal_kex_values(ec_keypair=rig.server.kex_cache.current_ec)
    attacker.steal_steks([generate_stek(rig.client._rng, 0.0)])
    assert not attacker.decrypt(recorded).success


def test_offered_ticket_on_resumed_connection_decrypts():
    """Resumed connections carry the ticket in the clear ClientHello."""
    rig = make_rig(ticket_window=3600.0)
    first = rig.client.connect(rig.server, "example.com")
    assert first.ok and first.new_ticket is not None
    rig.clock.advance(10)
    resumed = rig.client.connect(
        rig.server, "example.com",
        ticket=first.new_ticket.ticket, saved_session=first.session,
        capture=True,
    )
    assert resumed.resumed
    rig.client.exchange_data(resumed, b"resumed request")
    recorded = reconstruct_connection("example.com", 10.0, resumed.captured)
    assert recorded.offered_ticket  # visible in ClientHello
    attacker = NationStateAttacker()
    attacker.steal_steks(rig.stek_store.all_keys)
    outcome = attacker.decrypt(recorded)
    assert outcome.success
    assert any(b"resumed request" in p for p in outcome.plaintexts)
