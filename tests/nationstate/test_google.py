"""§7.2 Google-style target analysis tests."""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.hosting import EcosystemConfig, build_ecosystem
from repro.nationstate.google import (
    analyze_target,
    count_shared_stek_domains,
    measure_mx_concentration,
    measure_stek_rotation,
    measure_ticket_acceptance,
    render_report,
    run_decryption_demo,
)
from repro.netsim.clock import HOUR
from repro.scanner import ZGrabber


@pytest.fixture(scope="module")
def eco():
    return build_ecosystem(EcosystemConfig(population=420, seed=19, failure_rate=0.0))


@pytest.fixture()
def grabber(eco):
    return ZGrabber(eco, DeterministicRandom(31337))


def test_mx_concentration(eco):
    pointing, total = measure_mx_concentration(eco)
    assert total > 0
    # google-hosted domains always point there, plus ~9% of the rest.
    assert 0.05 < pointing / total < 0.35


def test_stek_rotation_measured_as_14h(eco, grabber):
    ids, rotation = measure_stek_rotation(grabber, "google.com", horizon=60 * HOUR)
    assert rotation is not None
    assert 13 * HOUR <= rotation <= 15 * HOUR
    assert len(set(ids)) >= 4  # several keys over 60 h


def test_ticket_acceptance_up_to_28h(eco, grabber):
    """Tickets are accepted for *up to* 28 hours: a 14 h rotation with
    one retained key honors a ticket for between 14 h and 28 h
    depending on where in the rotation cycle it was issued."""
    acceptance = measure_ticket_acceptance(grabber, "google.com")
    assert acceptance is not None
    assert 13 * HOUR <= acceptance <= 29 * HOUR


def test_mail_protocols_share_https_stek(eco, grabber):
    """§7.2: SMTPS/IMAPS/POP3S terminate on the same STEK as HTTPS."""
    from repro.nationstate.google import measure_cross_protocol_stek

    sharing = measure_cross_protocol_stek(grabber, "google.com")
    assert sharing == [465, 993, 995]


def test_non_mail_provider_has_no_mail_tls(eco, grabber):
    from repro.nationstate.google import measure_cross_protocol_stek

    assert measure_cross_protocol_stek(grabber, "yahoo.com") == []


def test_shared_stek_domain_count(eco, grabber):
    shared = count_shared_stek_domains(grabber, "google.com")
    google_domains = [d for d in eco.domains if d.provider == "google"]
    # All google-provider domains share one STEK store.
    assert shared >= len(google_domains) - 3  # tolerate scan jitter


def test_decryption_demo(eco, grabber):
    captured, decrypted, sample = run_decryption_demo(
        grabber, eco, "google.com", connections=4
    )
    assert captured == 4
    assert decrypted == 4
    assert b"GET /inbox" in sample


def test_yandex_never_rotates(eco):
    grabber = ZGrabber(eco, DeterministicRandom(999))
    ids, rotation = measure_stek_rotation(grabber, "yandex.ru", horizon=50 * HOUR)
    assert len(set(ids)) == 1  # one STEK the whole time
    assert rotation is None


def test_full_report(eco):
    report = analyze_target(eco, "google.com", rotation_horizon=40 * HOUR)
    assert report.connections_decrypted == report.connections_captured > 0
    assert report.mx_fraction > 0
    text = render_report(report)
    assert "google.com" in text
    assert "retrospectively decrypted" in text
    assert report.steks_per_day > 0
