"""Heartbleed-style leak vector tests."""

import pytest

from helpers import make_rig

from repro.crypto.rng import DeterministicRandom
from repro.nationstate.adversary import NationStateAttacker, reconstruct_connection
from repro.nationstate.leak import (
    MAX_LEAK_BYTES,
    VulnerableServer,
    build_heap_image,
    harvest_leaks,
)
from repro.tls.keyexchange import KexReusePolicy, ReuseMode
from repro.tls.ticket import open_ticket


def leaky_rig(**kwargs):
    rig = make_rig(**kwargs)
    vulnerable = VulnerableServer(rig.server, DeterministicRandom(4242))
    return rig, vulnerable


def test_heap_contains_stek_material():
    rig, _ = leaky_rig()
    heap = build_heap_image(rig.server, DeterministicRandom(1))
    stek = rig.stek_store.current
    assert stek.aes_key in heap
    assert stek.hmac_key in heap


def test_heap_contains_live_sessions_only():
    rig, _ = leaky_rig(cache_lifetime=300.0)
    first = rig.client.connect(rig.server, "example.com")
    assert first.ok
    heap = build_heap_image(rig.server, DeterministicRandom(2))
    assert first.session.master_secret in heap
    rig.clock.advance(301)  # session expires from the cache
    heap_later = build_heap_image(rig.server, DeterministicRandom(3))
    assert first.session.master_secret not in heap_later


def test_heap_contains_cached_kex_private():
    rig, _ = leaky_rig(kex_policy=KexReusePolicy(ReuseMode.PROCESS_LIFETIME))
    result = rig.client.connect(rig.server, "example.com")
    assert result.ok
    private = rig.server.kex_cache.current_ec.private
    heap = build_heap_image(rig.server, DeterministicRandom(4))
    assert private.to_bytes((private.bit_length() + 7) // 8, "big") in heap


def test_leak_is_bounded():
    _, vulnerable = leaky_rig()
    assert len(vulnerable.leak(100)) == 100
    assert len(vulnerable.leak(10 ** 9)) <= MAX_LEAK_BYTES
    assert vulnerable.leak(0) == b""
    assert vulnerable.leak(-5) == b""


def test_harvest_recovers_stek():
    rig, vulnerable = leaky_rig()
    harvest = harvest_leaks(vulnerable, attempts=16)
    assert not harvest.empty
    names = {stek.key_name for stek in harvest.steks}
    assert rig.stek_store.current.key_name in names


def test_harvested_stek_opens_real_tickets():
    """The end-to-end §2.1 story: leak → STEK → ticket decryption."""
    rig, vulnerable = leaky_rig()
    result = rig.client.connect(rig.server, "example.com")
    assert result.ok and result.new_ticket is not None
    harvest = harvest_leaks(vulnerable, attempts=16)
    opened = [
        open_ticket(stek, result.new_ticket.ticket)
        for stek in harvest.steks
    ]
    recovered = [c for c in opened if c is not None]
    assert recovered
    assert recovered[0].session.master_secret == result.session.master_secret


def test_harvested_secrets_feed_the_attacker():
    """Leak harvest plugs straight into the retrospective attacker."""
    rig, vulnerable = leaky_rig()
    result = rig.client.connect(rig.server, "example.com", capture=True)
    assert result.ok
    rig.client.exchange_data(result, b"GET /leaked")
    recorded = reconstruct_connection("example.com", 0.0, result.captured)

    harvest = harvest_leaks(vulnerable, attempts=16)
    attacker = NationStateAttacker()
    attacker.steal_steks(harvest.steks)
    outcome = attacker.decrypt(recorded)
    assert outcome.success
    assert any(b"GET /leaked" in p for p in outcome.plaintexts)


def test_small_leaks_need_more_attempts():
    """Tiny windows rarely capture a whole record in few probes."""
    rig, vulnerable = leaky_rig()
    tiny = harvest_leaks(vulnerable, attempts=2, leak_size=16)
    big = harvest_leaks(VulnerableServer(rig.server, DeterministicRandom(77)),
                        attempts=16, leak_size=MAX_LEAK_BYTES)
    assert len(big.steks) >= len(tiny.steks)
    assert big.steks


def test_clean_server_leaks_nothing_resumable():
    """No tickets, no cache, fresh kex: the heap holds no durable secrets
    beyond the last handshake's ephemeral value."""
    rig, vulnerable = leaky_rig(tickets=False, cache_lifetime=None)
    harvest = harvest_leaks(vulnerable, attempts=8)
    assert not harvest.steks
    assert not harvest.master_secrets
