"""IPv4 address and CIDR tests."""

import pytest

from repro.netsim.address import AddressAllocator, CIDRBlock, IPv4Address


def test_parse_and_str():
    address = IPv4Address.parse("192.168.1.42")
    assert str(address) == "192.168.1.42"
    assert address.value == (192 << 24) | (168 << 16) | (1 << 8) | 42


@pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", ""])
def test_parse_rejects_malformed(bad):
    with pytest.raises(ValueError):
        IPv4Address.parse(bad)


def test_address_range_check():
    with pytest.raises(ValueError):
        IPv4Address(-1)
    with pytest.raises(ValueError):
        IPv4Address(1 << 32)
    IPv4Address(0)
    IPv4Address((1 << 32) - 1)


def test_ordering():
    assert IPv4Address.parse("1.0.0.1") < IPv4Address.parse("1.0.0.2")


def test_slash24():
    address = IPv4Address.parse("10.1.2.200")
    block = address.slash24()
    assert str(block) == "10.1.2.0/24"
    assert block.contains(address)
    assert not block.contains(IPv4Address.parse("10.1.3.1"))


def test_cidr_parse_and_contains():
    block = CIDRBlock.parse("172.16.0.0/12")
    assert block.contains(IPv4Address.parse("172.20.5.5"))
    assert not block.contains(IPv4Address.parse("172.32.0.0"))
    assert block.size == 1 << 20


def test_cidr_rejects_host_bits():
    with pytest.raises(ValueError):
        CIDRBlock.parse("10.0.0.1/24")


def test_cidr_rejects_bad_prefix():
    with pytest.raises(ValueError):
        CIDRBlock(0, 33)


def test_cidr_zero_prefix_contains_everything():
    block = CIDRBlock(0, 0)
    assert block.contains(IPv4Address.parse("255.255.255.255"))


def test_cidr_address_offset():
    block = CIDRBlock.parse("10.0.0.0/24")
    assert str(block.address(5)) == "10.0.0.5"
    with pytest.raises(ValueError):
        block.address(256)


def test_allocator_sequential_and_skips_boundaries():
    allocator = AddressAllocator(CIDRBlock.parse("10.0.0.0/24"))
    first = allocator.allocate()
    assert str(first) == "10.0.0.1"  # .0 skipped
    allocated = [allocator.allocate() for _ in range(250)]
    assert all(a.value & 0xFF not in (0, 255) for a in allocated)


def test_allocator_exhaustion():
    allocator = AddressAllocator(CIDRBlock.parse("10.0.0.0/30"))
    allocator.allocate()
    allocator.allocate()
    allocator.allocate()
    with pytest.raises(RuntimeError):
        allocator.allocate()


def test_allocator_unique():
    allocator = AddressAllocator(CIDRBlock.parse("10.0.0.0/23"))
    seen = {allocator.allocate().value for _ in range(400)}
    assert len(seen) == 400
