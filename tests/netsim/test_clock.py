"""Simulated clock tests."""

import pytest

from repro.netsim.clock import DAY, HOUR, MINUTE, SimClock, format_duration


def test_advance():
    clock = SimClock()
    assert clock.now() == 0.0
    clock.advance(10.5)
    assert clock.now() == 10.5


def test_advance_rejects_negative():
    with pytest.raises(ValueError):
        SimClock().advance(-1)


def test_advance_to():
    clock = SimClock(100.0)
    clock.advance_to(150.0)
    assert clock.now() == 150.0
    with pytest.raises(ValueError):
        clock.advance_to(149.0)


def test_advance_to_same_time_ok():
    clock = SimClock(5.0)
    clock.advance_to(5.0)
    assert clock.now() == 5.0


def test_day_index():
    clock = SimClock()
    assert clock.day_index == 0
    clock.advance(DAY - 1)
    assert clock.day_index == 0
    clock.advance(1)
    assert clock.day_index == 1
    clock.advance(9 * DAY)
    assert clock.day_index == 10


def test_day_index_relative_to_start():
    clock = SimClock(start=5 * DAY)
    assert clock.day_index == 0
    clock.advance(DAY)
    assert clock.day_index == 1


def test_elapsed():
    clock = SimClock(start=100.0)
    clock.advance(50.0)
    assert clock.elapsed == 50.0


def test_format_duration():
    assert format_duration(30) == "30 s"
    assert format_duration(5 * MINUTE) == "5 min"
    assert format_duration(2 * HOUR) == "2 h"
    assert format_duration(18 * HOUR) == "18 h"
    assert format_duration(1.5 * HOUR) == "1.5 h"
    assert format_duration(63 * DAY) == "63 d"
    assert format_duration(1.5 * DAY) == "1.5 d"
