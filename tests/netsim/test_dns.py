"""DNS zone tests."""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.netsim.address import IPv4Address
from repro.netsim.dns import DNSZone, NXDomainError

A1 = IPv4Address.parse("10.0.0.1")
A2 = IPv4Address.parse("10.0.0.2")


def test_a_record_resolution():
    zone = DNSZone()
    zone.add_a("example.com", A1)
    assert zone.resolve_all("example.com") == [A1]


def test_nxdomain():
    zone = DNSZone()
    with pytest.raises(NXDomainError):
        zone.resolve_all("missing.example")


def test_case_insensitive_names():
    zone = DNSZone()
    zone.add_a("Example.COM", A1)
    assert zone.resolve_all("example.com") == [A1]
    assert zone.has("EXAMPLE.com")


def test_round_robin_choice_covers_all_records():
    zone = DNSZone()
    zone.add_a("multi.example", A1)
    zone.add_a("multi.example", A2)
    rng = DeterministicRandom(4)
    seen = {zone.resolve("multi.example", rng).value for _ in range(50)}
    assert seen == {A1.value, A2.value}


def test_mx_records():
    zone = DNSZone()
    zone.add_mx("corp.example", "aspmx.l.google-sim.example")
    zone.add_mx("corp.example", "backup.mail.example")
    assert zone.mx("corp.example") == [
        "aspmx.l.google-sim.example",
        "backup.mail.example",
    ]


def test_mx_empty_for_unknown_or_a_only():
    zone = DNSZone()
    zone.add_a("web.example", A1)
    assert zone.mx("web.example") == []
    assert zone.mx("missing.example") == []


def test_mx_only_name_has_no_a():
    zone = DNSZone()
    zone.add_mx("mailonly.example", "mx.example")
    with pytest.raises(NXDomainError):
        zone.resolve_all("mailonly.example")


def test_query_counter():
    zone = DNSZone()
    zone.add_a("x.example", A1)
    zone.resolve_all("x.example")
    zone.mx("x.example")
    assert zone.queries == 2


def test_names_and_len():
    zone = DNSZone()
    zone.add_a("b.example", A1)
    zone.add_a("a.example", A2)
    assert zone.names() == ["a.example", "b.example"]
    assert len(zone) == 2


def test_installed_nxdomain_window_hides_existing_names():
    from repro.faults.plan import (
        ImpairmentMatch,
        ImpairmentPlan,
        ImpairmentWindow,
    )

    zone = DNSZone()
    zone.add_a("gone.example", A1)
    zone.add_a("here.example", A2)
    plan = ImpairmentPlan(windows=(
        ImpairmentWindow(
            kind="nxdomain", start=0.0, end=100.0, rate=1.0,
            match=ImpairmentMatch(domains=("gone.example",)),
        ),
    ))
    now = 0.0
    zone.install_impairments(plan, lambda: now)
    with pytest.raises(NXDomainError):
        zone.resolve_all("gone.example")
    assert zone.resolve_all("here.example") == [A2]
    # Outside the window the name comes back.
    now = 200.0
    assert zone.resolve_all("gone.example") == [A1]
