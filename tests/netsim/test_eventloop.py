"""Unit tests for the deterministic event loop (netsim.eventloop).

The loop's three documented invariants — global (due, sequence)
ordering, every yield through the heap, and a clock that never rewinds
— are what make the event-driven scanner byte-identical to the blocking
oracle, so they each get a direct test here rather than relying only on
the end-to-end record-identity suite.
"""

import doctest

import pytest

import repro.netsim.eventloop
from repro.netsim.eventloop import EventLoop, Task, Wait


class Clock:
    def __init__(self, start=0.0):
        self.t = start
        self.advances = []

    def now(self):
        return self.t

    def advance(self, when):
        self.advances.append(when)
        self.t = max(self.t, when)


def make_loop(start=0.0):
    clock = Clock(start)
    return clock, EventLoop(clock.now, clock.advance)


# -- Wait ---------------------------------------------------------------

def test_wait_relative_and_absolute():
    assert Wait(2.5).due(now=10.0) == 12.5
    assert Wait().due(now=10.0) == 10.0
    assert Wait.until(99.0).due(now=10.0) == 99.0
    # until() wins even when a relative component is present.
    assert Wait(5.0, at=42.0).due(now=10.0) == 42.0


def test_wait_is_immutable():
    with pytest.raises(AttributeError):
        Wait(1.0).seconds = 2.0  # type: ignore[misc]


# -- ordering -----------------------------------------------------------

def test_tasks_resume_in_due_time_order_not_spawn_order():
    clock, loop = make_loop()
    log = []

    def task(name, delay):
        yield Wait(delay)
        log.append((name, clock.now()))

    loop.spawn(task("slow", 10.0))
    loop.spawn(task("fast", 2.0))
    loop.run()
    assert log == [("fast", 2.0), ("slow", 10.0)]


def test_equal_due_times_resume_in_issue_order():
    """Invariant 1+2: ties break by the global sequence counter, which

    increments once per spawn/reschedule — so equal-time waits resume in
    exactly the order they were issued, regardless of how many tasks are
    in flight.
    """
    clock, loop = make_loop()
    log = []

    def task(name):
        log.append(("start", name))
        yield Wait(0.0)
        log.append(("mid", name))
        yield Wait(0.0)
        log.append(("end", name))

    for name in ("a", "b", "c"):
        loop.spawn(task(name))
    loop.run()
    assert log == [
        ("start", "a"), ("start", "b"), ("start", "c"),
        ("mid", "a"), ("mid", "b"), ("mid", "c"),
        ("end", "a"), ("end", "b"), ("end", "c"),
    ]


def test_zero_wait_parks_rather_than_running_inline():
    """Invariant 2: a Wait(0.0) yields control to other due tasks."""
    clock, loop = make_loop()
    log = []

    def chatty():
        log.append("chatty-1")
        yield Wait(0.0)
        log.append("chatty-2")

    def other():
        log.append("other")
        return
        yield  # pragma: no cover - generator marker

    loop.spawn(chatty())
    loop.spawn(other())
    loop.run()
    # "other" runs between the two chatty steps: the zero wait went
    # through the heap behind other's already-queued entry.
    assert log == ["chatty-1", "other", "chatty-2"]


def test_past_due_wait_never_rewinds_clock():
    """Invariant 3: resuming a wait already in the past clamps to now."""
    clock, loop = make_loop()
    seen = []

    def late():
        yield Wait.until(5.0)
        seen.append(clock.now())

    def early():
        yield Wait.until(50.0)
        seen.append(clock.now())

    loop.spawn(early())
    loop.spawn(late())
    loop.run()
    assert seen == [5.0, 50.0]
    assert clock.advances == sorted(clock.advances)


def test_advance_clamps_to_now_for_stale_entries():
    clock, loop = make_loop(start=100.0)
    ran = []

    def task():
        ran.append(clock.now())
        return
        yield  # pragma: no cover - generator marker

    # Admitted due at t=10 on a clock already at t=100.
    loop.spawn(task(), at=10.0)
    loop.run()
    assert ran == [100.0]
    assert clock.t == 100.0


# -- spawn/run mechanics ------------------------------------------------

def test_spawn_at_future_time():
    clock, loop = make_loop()
    ran = []

    def task():
        ran.append(clock.now())
        return
        yield  # pragma: no cover - generator marker

    loop.spawn(task(), at=7.5)
    loop.run()
    assert ran == [7.5]


def test_task_result_and_done_flag():
    clock, loop = make_loop()

    def task(value):
        yield Wait(1.0)
        return value * 2

    handle = loop.spawn(task(21))
    assert isinstance(handle, Task)
    assert not handle.done
    loop.run()
    assert handle.done
    assert handle.result == 42


def test_pending_counts_parked_tasks():
    clock, loop = make_loop()

    def task():
        yield Wait(1.0)

    loop.spawn(task())
    loop.spawn(task())
    assert loop.pending == 2
    loop.run()
    assert loop.pending == 0


def test_spawning_from_inside_a_running_task():
    """The sweep admits new grabs while earlier ones are in flight."""
    clock, loop = make_loop()
    log = []

    def child(name):
        yield Wait(1.0)
        log.append((name, clock.now()))

    def parent():
        loop.spawn(child("spawned-at-0"))
        yield Wait(5.0)
        loop.spawn(child("spawned-at-5"))

    loop.spawn(parent())
    loop.run()
    assert log == [("spawned-at-0", 1.0), ("spawned-at-5", 6.0)]


def test_task_exception_propagates():
    clock, loop = make_loop()

    def boom():
        yield Wait(1.0)
        raise RuntimeError("deterministic crash")

    loop.spawn(boom())
    with pytest.raises(RuntimeError, match="deterministic crash"):
        loop.run()


def test_interleaving_independent_of_admission_batch():
    """Same schedule, different admission grouping, same resume order.

    This is the loop-level version of the scanner's concurrency
    independence: whether tasks are spawned all at once or in chunks,
    the (due, sequence) order — and therefore the log — is identical as
    long as the waits themselves are.
    """
    def run_with_batch(batch):
        clock, loop = make_loop()
        log = []
        # Non-decreasing due times, like the sweep's schedule ticks.
        schedule = [(i * 0.5, i) for i in range(12)]

        def task(due, i):
            yield Wait.until(due)
            log.append((i, clock.now()))

        for start in range(0, len(schedule), batch):
            for due, i in schedule[start:start + batch]:
                loop.spawn(task(due, i))
            loop.run()
        return log

    assert run_with_batch(1) == run_with_batch(4) == run_with_batch(12)


def test_module_doctests():
    failures, _ = doctest.testmod(repro.netsim.eventloop, verbose=False)
    assert failures == 0
