"""Network fabric tests (routing, failures, load balancing)."""

import pytest

from helpers import make_rig

from repro.crypto.rng import DeterministicRandom
from repro.netsim.address import IPv4Address
from repro.netsim.network import ConnectTimeout, Endpoint, Network

IP = IPv4Address.parse("10.0.0.1")
OTHER = IPv4Address.parse("10.0.0.2")


def make_network(failure_rate=0.0, seed=1):
    return Network(DeterministicRandom(seed), failure_rate=failure_rate)


def server():
    return make_rig().server


def test_register_and_connect():
    network = make_network()
    backend = server()
    network.register(Endpoint(ip=IP, backends=[backend]))
    assert network.connect(IP) is backend
    assert network.attempts == 1
    assert network.failures == 0


def test_connect_unroutable():
    network = make_network()
    with pytest.raises(ConnectTimeout):
        network.connect(OTHER)
    assert network.failures == 1


def test_duplicate_endpoint_rejected():
    network = make_network()
    network.register(Endpoint(ip=IP, backends=[server()]))
    with pytest.raises(ValueError):
        network.register(Endpoint(ip=IP, backends=[server()]))


def test_distinct_ports_coexist():
    network = make_network()
    a, b = server(), server()
    network.register(Endpoint(ip=IP, port=443, backends=[a]))
    network.register(Endpoint(ip=IP, port=8443, backends=[b]))
    assert network.connect(IP, 443) is a
    assert network.connect(IP, 8443) is b


def test_dead_endpoint_times_out():
    network = make_network()
    network.register(Endpoint(ip=IP, backends=[]))
    with pytest.raises(ConnectTimeout):
        network.connect(IP)


def test_failure_injection_rate():
    network = make_network(failure_rate=0.3, seed=5)
    network.register(Endpoint(ip=IP, backends=[server()]))
    failures = 0
    for _ in range(500):
        try:
            network.connect(IP)
        except ConnectTimeout:
            failures += 1
    assert 90 < failures < 220  # ~150 expected


def test_failure_rate_validation():
    with pytest.raises(ValueError):
        make_network(failure_rate=1.0)
    with pytest.raises(ValueError):
        make_network(failure_rate=-0.1)


def test_affinity_endpoint_always_first_backend():
    network = make_network()
    a, b = server(), server()
    network.register(Endpoint(ip=IP, backends=[a, b], affinity=True))
    assert all(network.connect(IP) is a for _ in range(20))


def test_no_affinity_sprays_backends():
    network = make_network(seed=9)
    a, b = server(), server()
    network.register(Endpoint(ip=IP, backends=[a, b], affinity=False))
    picked = {id(network.connect(IP)) for _ in range(40)}
    assert picked == {id(a), id(b)}


def test_endpoint_lookup():
    network = make_network()
    endpoint = Endpoint(ip=IP, backends=[server()])
    network.register(endpoint)
    assert network.endpoint_at(IP) is endpoint
    assert network.endpoint_at(OTHER) is None
    assert len(network) == 1
    assert network.endpoints() == [endpoint]
