"""Network fabric tests (routing, failures, load balancing)."""

import pytest

from helpers import make_rig

from repro.crypto.rng import DeterministicRandom
from repro.netsim.address import IPv4Address
from repro.netsim.network import (
    ConnectTimeout,
    Endpoint,
    Network,
    NoLiveBackend,
)

IP = IPv4Address.parse("10.0.0.1")
OTHER = IPv4Address.parse("10.0.0.2")


def make_network(failure_rate=0.0, seed=1):
    return Network(DeterministicRandom(seed), failure_rate=failure_rate)


def server():
    return make_rig().server


def test_register_and_connect():
    network = make_network()
    backend = server()
    network.register(Endpoint(ip=IP, backends=[backend]))
    assert network.connect(IP) is backend
    assert network.attempts == 1
    assert network.failures == 0


def test_connect_unroutable():
    network = make_network()
    with pytest.raises(ConnectTimeout):
        network.connect(OTHER)
    assert network.failures == 1


def test_duplicate_endpoint_rejected():
    network = make_network()
    network.register(Endpoint(ip=IP, backends=[server()]))
    with pytest.raises(ValueError):
        network.register(Endpoint(ip=IP, backends=[server()]))


def test_distinct_ports_coexist():
    network = make_network()
    a, b = server(), server()
    network.register(Endpoint(ip=IP, port=443, backends=[a]))
    network.register(Endpoint(ip=IP, port=8443, backends=[b]))
    assert network.connect(IP, 443) is a
    assert network.connect(IP, 8443) is b


def test_dead_endpoint_times_out():
    network = make_network()
    network.register(Endpoint(ip=IP, backends=[]))
    with pytest.raises(ConnectTimeout):
        network.connect(IP)


def test_failure_injection_rate():
    network = make_network(failure_rate=0.3, seed=5)
    network.register(Endpoint(ip=IP, backends=[server()]))
    failures = 0
    for _ in range(500):
        try:
            network.connect(IP)
        except ConnectTimeout:
            failures += 1
    assert 90 < failures < 220  # ~150 expected


def test_failure_rate_validation():
    with pytest.raises(ValueError):
        make_network(failure_rate=1.0)
    with pytest.raises(ValueError):
        make_network(failure_rate=-0.1)


def test_affinity_endpoint_always_first_backend():
    network = make_network()
    a, b = server(), server()
    network.register(Endpoint(ip=IP, backends=[a, b], affinity=True))
    assert all(network.connect(IP) is a for _ in range(20))


def test_no_affinity_sprays_backends():
    network = make_network(seed=9)
    a, b = server(), server()
    network.register(Endpoint(ip=IP, backends=[a, b], affinity=False))
    picked = {id(network.connect(IP)) for _ in range(40)}
    assert picked == {id(a), id(b)}


def test_endpoint_lookup():
    network = make_network()
    endpoint = Endpoint(ip=IP, backends=[server()])
    network.register(endpoint)
    assert network.endpoint_at(IP) is endpoint
    assert network.endpoint_at(OTHER) is None
    assert len(network) == 1
    assert network.endpoints() == [endpoint]


# -- failure determinism and classification ---------------------------------


def _failure_sequence(seed, failure_rate, attempts=300):
    """Which of ``attempts`` identical connects fail, as a bool list."""
    network = Network(DeterministicRandom(seed), failure_rate=failure_rate)
    network.register(Endpoint(ip=IP, backends=[server()]))
    out = []
    for _ in range(attempts):
        try:
            network.connect(IP)
            out.append(False)
        except ConnectTimeout:
            out.append(True)
    return out


def test_same_seed_and_rate_give_identical_failure_sequence():
    first = _failure_sequence(seed=11, failure_rate=0.25)
    second = _failure_sequence(seed=11, failure_rate=0.25)
    assert first == second
    assert any(first) and not all(first)


def test_different_seed_changes_failure_sequence():
    assert _failure_sequence(11, 0.25) != _failure_sequence(12, 0.25)


def test_timeout_reasons_label_the_taxonomy():
    network = make_network()
    network.register(Endpoint(ip=IP, backends=[]))
    with pytest.raises(ConnectTimeout) as unroutable:
        network.connect(OTHER)
    assert unroutable.value.reason == "connect_timeout"
    with pytest.raises(NoLiveBackend) as dead:
        network.connect(IP)
    assert dead.value.reason == "no_backend"
    # NoLiveBackend is still a ConnectTimeout, so legacy handlers that
    # catch the base class keep working.
    assert isinstance(dead.value, ConnectTimeout)


def test_pick_backend_live_restriction():
    rng = DeterministicRandom(3)
    a, b, c = server(), server(), server()
    endpoint = Endpoint(ip=IP, backends=[a, b, c], affinity=False)
    assert endpoint.pick_backend(rng, live=[2]) is c
    with pytest.raises(NoLiveBackend):
        endpoint.pick_backend(rng, live=[])


def test_no_affinity_spray_is_roughly_uniform():
    rng = DeterministicRandom(17)
    backends = [server() for _ in range(4)]
    endpoint = Endpoint(ip=IP, backends=backends, affinity=False)
    counts = {id(backend): 0 for backend in backends}
    for _ in range(4000):
        counts[id(endpoint.pick_backend(rng))] += 1
    # ~1000 each; a skewed balancer would break the paper's §4.3
    # STEK-span jitter model.
    assert all(800 < count < 1200 for count in counts.values())
