"""AS registry tests."""

import pytest

from repro.netsim.address import IPv4Address
from repro.netsim.topology import ASRegistry


def test_register_and_lookup():
    registry = ASRegistry()
    registry.register(13335, "CloudFlare", ["104.16.0.0/14"])
    found = registry.lookup(IPv4Address.parse("104.17.1.1"))
    assert found is not None and found.asn == 13335


def test_lookup_outside_any_as():
    registry = ASRegistry()
    registry.register(1, "A", ["10.0.0.0/16"])
    assert registry.lookup(IPv4Address.parse("192.168.0.1")) is None


def test_longest_prefix_wins():
    registry = ASRegistry()
    registry.register(1, "Big", ["10.0.0.0/8"])
    registry.register(2, "Small", ["10.5.0.0/16"])
    assert registry.lookup(IPv4Address.parse("10.5.1.1")).asn == 2
    assert registry.lookup(IPv4Address.parse("10.6.1.1")).asn == 1


def test_duplicate_asn_rejected():
    registry = ASRegistry()
    registry.register(1, "A", ["10.0.0.0/16"])
    with pytest.raises(ValueError):
        registry.register(1, "B", ["10.1.0.0/16"])


def test_allocation_within_as():
    registry = ASRegistry()
    autonomous_system = registry.register(5, "Host", ["10.9.0.0/24"])
    address = autonomous_system.allocate_address()
    assert autonomous_system.contains(address)
    assert registry.lookup(address).asn == 5


def test_allocation_spills_to_second_block():
    registry = ASRegistry()
    autonomous_system = registry.register(6, "Host", ["10.9.0.0/30", "10.10.0.0/24"])
    for _ in range(10):
        address = autonomous_system.allocate_address()
        assert autonomous_system.contains(address)


def test_allocation_exhaustion():
    registry = ASRegistry()
    autonomous_system = registry.register(7, "Tiny", ["10.0.0.0/31"])
    autonomous_system.allocate_address()
    with pytest.raises(RuntimeError):
        autonomous_system.allocate_address()
        autonomous_system.allocate_address()


def test_all_systems_sorted():
    registry = ASRegistry()
    registry.register(9, "Nine", ["10.0.0.0/24"])
    registry.register(3, "Three", ["10.1.0.0/24"])
    assert [a.asn for a in registry.all_systems()] == [3, 9]
    assert len(registry) == 2
