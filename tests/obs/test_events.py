"""Event log: schema validation, ordering, and worker-count determinism.

The hard invariant mirrors the metrics one: the event log a study
streams is a function of the shard layout alone.  Running the same
shards serially or through a process pool must yield byte-identical
logs once the volatile wall-clock fields are stripped — that is what
the :class:`~repro.obs.events.OrderedShardWriter` reorder buffer is
for.
"""

import json

import pytest

from repro.hosting import EcosystemConfig, build_ecosystem
from repro.obs.events import (
    EventLog,
    EventWriter,
    LEVELS,
    OrderedShardWriter,
    SCHEMA,
    level_at_least,
    load_events,
    render_event,
    render_summary,
    strip_volatile,
    summarize_events,
    validate_events,
)
from repro.obs.exporter import LivePlane
from repro.scanner import StudyConfig, run_study_with_stats

SMALL_POPULATION = 320
BENCH_SEED = 2016


def _tiny_config(**overrides) -> StudyConfig:
    settings = dict(
        days=2,
        seed=404,
        run_probes=False,
        run_crossdomain=False,
        run_support_scans=False,
    )
    settings.update(overrides)
    return StudyConfig(**settings)


def _run_with_events(tmp_path, name, *, workers=1, shards=2, **overrides):
    ecosystem = build_ecosystem(
        EcosystemConfig(population=SMALL_POPULATION, seed=BENCH_SEED)
    )
    path = str(tmp_path / name)
    plane = LivePlane(events_path=path).start()
    try:
        run_study_with_stats(
            ecosystem, _tiny_config(**overrides),
            workers=workers, shards=shards, live=plane,
        )
    finally:
        plane.stop()
    return path


class TestEventLogPrimitives:
    def test_disabled_log_drops_everything(self):
        log = EventLog()
        log.emit("shard.start", shard=0)
        assert log.drain() == []
        assert log.emitted == 0

    def test_enabled_log_records_with_ts_and_level(self):
        log = EventLog()
        log.enable()
        log.emit("scanner.retry", level="warning", domain="a.example")
        (record,) = log.drain()
        assert record["event"] == "scanner.retry"
        assert record["level"] == "warning"
        assert record["domain"] == "a.example"
        assert isinstance(record["ts"], float)

    def test_bad_level_rejected(self):
        log = EventLog()
        log.enable()
        with pytest.raises(ValueError):
            log.emit("x", level="fatal")

    def test_capacity_drops_oldest_and_counts(self):
        log = EventLog(capacity=3)
        log.enable()
        for i in range(5):
            log.emit("tick", i=i)
        records = log.drain()
        assert [r["i"] for r in records] == [2, 3, 4]
        assert log.dropped == 2
        assert log.emitted == 5


class TestWriterOrdering:
    def test_ordered_writer_flushes_in_shard_order(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        writer = EventWriter(path)
        ordered = OrderedShardWriter(writer)
        # Shard 1 finishes first; nothing may be written until shard 0.
        ordered.add_shard(1, [{"event": "shard.end", "level": "info",
                               "ts": 1.0, "shard": 1}])
        ordered.add_shard(0, [{"event": "shard.end", "level": "info",
                               "ts": 2.0, "shard": 0}])
        writer.close()
        records = load_events(path)
        assert [r.get("shard") for r in records] == [None, 0, 1]
        assert [r["seq"] for r in records] == [0, 1, 2]

    def test_header_carries_schema(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        EventWriter(path).close()
        (header,) = load_events(path)
        assert header["event"] == "log.open"
        assert header["schema"] == SCHEMA


class TestValidation:
    def test_valid_log_passes(self, tmp_path):
        path = _run_with_events(tmp_path, "events.jsonl")
        assert validate_events(load_events(path)) == []

    def test_missing_header_flagged(self):
        errors = validate_events([{"event": "study.start", "level": "info",
                                   "ts": 1.0, "seq": 0}])
        assert any("log.open" in e for e in errors)

    def test_sequence_gap_flagged(self, tmp_path):
        path = _run_with_events(tmp_path, "events.jsonl")
        records = load_events(path)
        records[2]["seq"] = 99
        assert any("seq" in e for e in validate_events(records))

    def test_bad_level_flagged(self, tmp_path):
        path = _run_with_events(tmp_path, "events.jsonl")
        records = load_events(path)
        records[1]["level"] = "loud"
        assert any("level" in e for e in validate_events(records))


class TestStudyEventStream:
    def test_lifecycle_vocabulary(self, tmp_path):
        path = _run_with_events(tmp_path, "events.jsonl", shards=2)
        records = load_events(path)
        names = [r["event"] for r in records]
        assert names[0] == "log.open"
        assert names[1] == "study.start"
        assert names[-2:] == ["study.merge", "study.end"]
        assert names.count("shard.start") == 2
        assert names.count("shard.end") == 2
        assert names.count("shard.day") == 4  # 2 shards x 2 days

    def test_shard_day_counts_grabs(self, tmp_path):
        path = _run_with_events(tmp_path, "events.jsonl")
        days = [r for r in load_events(path) if r["event"] == "shard.day"]
        assert all(r["grabs"] > 0 for r in days)
        assert all(r["days"] == 2 for r in days)

    def test_byte_identical_across_worker_counts(self, tmp_path):
        stripped = {}
        for workers in (1, 2):
            path = _run_with_events(
                tmp_path, f"events-w{workers}.jsonl",
                workers=workers, shards=2,
            )
            records = strip_volatile(load_events(path))
            stripped[workers] = "\n".join(
                json.dumps(r, sort_keys=True) for r in records
            )
        assert stripped[1] == stripped[2]


class TestSummariesAndRendering:
    def test_summary_headline_counts(self, tmp_path):
        path = _run_with_events(tmp_path, "events.jsonl")
        summary = summarize_events(load_events(path))
        assert summary["total"] == len(load_events(path))
        assert summary["retries"] == 0
        assert summary["aborted"] is False
        assert summary["by_event"]["shard.day"] == 4  # 2 shards x 2 days

    def test_render_event_one_line(self):
        line = render_event({"event": "scanner.retry", "level": "warning",
                             "ts": 1.0, "seq": 3, "domain": "a.example"})
        assert "scanner.retry" in line and "domain=a.example" in line
        assert "\n" not in line

    def test_render_summary_mentions_levels(self, tmp_path):
        path = _run_with_events(tmp_path, "events.jsonl")
        text = render_summary(summarize_events(load_events(path)))
        assert "events" in text

    def test_level_threshold(self):
        warning = {"event": "x", "level": "warning"}
        assert level_at_least(warning, "info")
        assert not level_at_least(warning, "error")
        assert [lv for lv in LEVELS] == ["debug", "info", "warning", "error"]
