"""Live plane over HTTP: scrape /metrics and /progress mid-study.

The acceptance bar for the observability plane: while a study is
running with ``--serve-metrics``, GET /metrics returns valid
Prometheus text whose counters advance between scrapes, and
GET /progress reports completed/total shard-days.  The scrapes are
parsed back with :func:`repro.obs.parse_prometheus` — the same parser
CI's smoke job uses — so "valid" means round-trippable, not merely
200 OK.
"""

import json
import threading
import time
import urllib.error
import urllib.request

from repro.hosting import EcosystemConfig, build_ecosystem
from repro.obs import parse_prometheus, to_prom_snapshot
from repro.obs.exporter import LivePlane, ObservabilityServer
from repro.scanner import StudyConfig, run_study_with_stats

SMALL_POPULATION = 320
BENCH_SEED = 2016

ATTEMPT_KEY = "repro_scanner_grab_attempt"


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read()


class TestObservabilityServer:
    def _server(self):
        metrics = {"counters": {"scanner.grab.attempt": 3},
                   "gauges": {}, "histograms": {}}
        progress = {"schema": "repro-progress/1", "state": "running"}
        events = [{"event": "study.start", "level": "info", "ts": 1.0}]
        return ObservabilityServer(
            lambda: metrics, lambda: progress, lambda: list(events), port=0,
        )

    def test_endpoints(self):
        server = self._server()
        server.start()
        try:
            status, headers, body = _get(f"{server.url}/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            parsed = parse_prometheus(body.decode("utf-8"))
            assert parsed["counters"][ATTEMPT_KEY] == 3

            status, headers, body = _get(f"{server.url}/progress")
            assert status == 200
            assert headers["Content-Type"].startswith("application/json")
            assert json.loads(body)["state"] == "running"

            status, _, body = _get(f"{server.url}/healthz")
            assert status == 200 and json.loads(body)["ok"] is True

            status, _, body = _get(f"{server.url}/events")
            assert status == 200
            assert json.loads(body)["recent"][0]["event"] == "study.start"
        finally:
            server.stop()

    def test_unknown_path_is_404(self):
        server = self._server()
        server.start()
        try:
            try:
                _get(f"{server.url}/nope")
                raise AssertionError("expected HTTP 404")
            except urllib.error.HTTPError as exc:
                assert exc.code == 404
        finally:
            server.stop()


class TestMidStudyScrape:
    def test_counters_advance_and_roundtrip(self, tmp_path):
        config = StudyConfig(
            days=3,
            seed=404,
            run_probes=False,
            run_crossdomain=False,
            run_support_scans=False,
        )
        ecosystem = build_ecosystem(
            EcosystemConfig(population=SMALL_POPULATION, seed=BENCH_SEED)
        )
        plane = LivePlane(
            serve_port=0, events_path=str(tmp_path / "events.jsonl")
        ).start()
        url = plane.url
        errors = []

        def run():
            try:
                run_study_with_stats(
                    ecosystem, config, shards=4, workers=1, live=plane,
                )
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        worker = threading.Thread(target=run)
        worker.start()
        attempt_totals = set()
        progress_seen = []
        try:
            while worker.is_alive():
                _, _, body = _get(f"{url}/metrics")
                parsed = parse_prometheus(body.decode("utf-8"))
                total = parsed["counters"].get(ATTEMPT_KEY)
                if total:
                    attempt_totals.add(total)
                _, _, body = _get(f"{url}/progress")
                progress_seen.append(json.loads(body))
                time.sleep(0.02)
        finally:
            worker.join()
        assert not errors, errors

        # Counters advanced between scrapes (several distinct totals).
        assert len(attempt_totals) >= 2
        assert all(total > 0 for total in attempt_totals)

        # Progress reported completed/total shard-days with an ETA once
        # at least one unit had landed.
        running = [p for p in progress_seen if p["state"] == "running"]
        assert running, "never caught the study mid-run"
        assert all(p["day_units"]["total"] == 12 for p in running)
        with_eta = [p for p in running if p["day_units"]["completed"]]
        assert all(p["eta_s"] is not None for p in with_eta)

        # The final scrape parses back to exactly the live snapshot.
        _, _, body = _get(f"{url}/metrics")
        parsed = parse_prometheus(body.decode("utf-8"))
        assert parsed == to_prom_snapshot(plane.live_snapshot())
        plane.stop()

        # After stop() the endpoint is gone.
        try:
            _get(f"{url}/healthz")
            raise AssertionError("server still reachable after stop()")
        except (urllib.error.URLError, ConnectionError, OSError):
            pass
