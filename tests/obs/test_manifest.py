"""Run manifests: build, persist, load, and structural validation."""

import json

from repro.obs.manifest import (
    MANIFEST_NAME,
    SCHEMA,
    build_manifest,
    config_dict,
    git_describe,
    load_manifest,
    load_metrics,
    validate_manifest,
    write_manifest,
    write_metrics,
)
from repro.scanner import StudyConfig


def _valid_run() -> dict:
    return {
        "days": 2, "shards": 1, "workers": 1, "grabs": 10,
        "elapsed_seconds": 1.5,
    }


class TestBuild:
    def test_build_records_schema_config_and_seed(self):
        config = StudyConfig(
            days=2, seed=42,
            run_probes=False, run_crossdomain=False, run_support_scans=False,
        )
        manifest = build_manifest(study_config=config, run=_valid_run())
        assert manifest["schema"] == SCHEMA
        assert manifest["seed"] == 42
        assert manifest["config"]["study"]["days"] == 2
        assert json.dumps(manifest)  # whole manifest must be JSON-safe

    def test_config_dict_falls_back_to_repr_for_unserializable(self):
        class Odd:
            def __init__(self):
                self.fn = lambda: None

        projected = config_dict(Odd())
        assert isinstance(projected["fn"], str)

    def test_valid_manifest_passes_validation(self):
        manifest = build_manifest(
            run=_valid_run(),
            shards=[{"shard_id": 0, "elapsed_seconds": 1.0}],
            channels={"ticket_daily": 5},
        )
        assert validate_manifest(manifest) == []


class TestValidate:
    def test_wrong_schema_is_flagged(self):
        manifest = build_manifest(run=_valid_run())
        manifest["schema"] = "other/9"
        assert any("schema" in e for e in validate_manifest(manifest))

    def test_missing_run_fields_are_flagged(self):
        manifest = build_manifest(run={"days": 2})
        errors = validate_manifest(manifest)
        assert any("run.grabs" in e for e in errors)
        assert any("run.elapsed_seconds" in e for e in errors)

    def test_negative_channel_count_is_flagged(self):
        manifest = build_manifest(run=_valid_run(), channels={"x": -1})
        assert any("channels" in e for e in validate_manifest(manifest))

    def test_duplicate_shard_ids_are_flagged(self):
        manifest = build_manifest(
            run=_valid_run(),
            shards=[{"shard_id": 0}, {"shard_id": 0}],
        )
        assert any("duplicate shard_id" in e for e in validate_manifest(manifest))

    def test_shard_entry_count_must_match_run(self):
        run = _valid_run()
        run["shards"] = 2
        manifest = build_manifest(run=run, shards=[{"shard_id": 0}])
        assert any("run.shards=2" in e for e in validate_manifest(manifest))

    def test_non_dict_manifest(self):
        assert validate_manifest([]) == ["manifest is not a JSON object"]


class TestPersistence:
    def test_write_then_load_by_dir_and_by_file(self, tmp_path):
        manifest = build_manifest(run=_valid_run())
        path = write_manifest(str(tmp_path), manifest)
        assert path.endswith(MANIFEST_NAME)
        assert load_manifest(str(tmp_path)) == manifest
        assert load_manifest(path) == manifest

    def test_metrics_round_trip_and_missing_default(self, tmp_path):
        snapshot = {"counters": {"a": 1}, "gauges": {}, "histograms": {}}
        write_metrics(str(tmp_path), snapshot)
        assert load_metrics(str(tmp_path)) == snapshot
        assert load_metrics(str(tmp_path / "absent")) == {}


class TestGitDescribe:
    """Provenance lookup must degrade, never raise (satellite PR-8)."""

    def test_missing_git_binary(self, monkeypatch):
        import subprocess

        def boom(*args, **kwargs):
            raise FileNotFoundError("git: command not found")

        monkeypatch.setattr(subprocess, "run", boom)
        assert git_describe() == "unknown"

    def test_nonzero_exit(self, monkeypatch):
        import subprocess

        completed = subprocess.CompletedProcess(
            args=["git"], returncode=128, stdout="", stderr="not a repo"
        )
        monkeypatch.setattr(subprocess, "run", lambda *a, **kw: completed)
        assert git_describe() == "unknown"

    def test_timeout(self, monkeypatch):
        import subprocess

        def hang(*args, **kwargs):
            raise subprocess.TimeoutExpired(cmd=["git"], timeout=10)

        monkeypatch.setattr(subprocess, "run", hang)
        assert git_describe() == "unknown"

    def test_empty_stdout(self, monkeypatch):
        import subprocess

        completed = subprocess.CompletedProcess(
            args=["git"], returncode=0, stdout="\n", stderr=""
        )
        monkeypatch.setattr(subprocess, "run", lambda *a, **kw: completed)
        assert git_describe() == "unknown"

    def test_manifest_still_builds_without_git(self, monkeypatch):
        import subprocess

        def boom(*args, **kwargs):
            raise FileNotFoundError("git: command not found")

        monkeypatch.setattr(subprocess, "run", boom)
        manifest = build_manifest(run=_valid_run())
        assert manifest["git"]["describe"] == "unknown"
        assert validate_manifest(manifest) == []
