"""Metrics registry: instruments, snapshots, deltas, deterministic merge."""

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    cache_stats,
    merge_snapshots,
    parse_key,
)


class TestKeys:
    def test_unlabeled_key_is_plain_name(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        assert list(registry.snapshot()["counters"]) == ["a.b"]

    def test_labels_serialize_sorted(self):
        registry = MetricsRegistry()
        registry.counter("hs", kind="full", kex="dhe").inc()
        key = next(iter(registry.snapshot()["counters"]))
        assert key == "hs{kex=dhe,kind=full}"

    def test_parse_key_inverts_serialization(self):
        assert parse_key("hs{kex=dhe,kind=full}") == (
            "hs", {"kex": "dhe", "kind": "full"}
        )
        assert parse_key("plain") == ("plain", {})


class TestInstruments:
    def test_counter_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("x", a=1)
        second = registry.counter("x", a=1)
        assert first is second
        first.inc()
        second.inc(4)
        assert registry.snapshot()["counters"]["x{a=1}"] == 5

    def test_gauge_set(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(7)
        assert registry.snapshot()["gauges"]["depth"] == 7

    def test_histogram_bucketing(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t", bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        snap = registry.snapshot()["histograms"]["t"]
        assert snap["counts"] == [1, 2, 1]  # <=0.1, <=1.0, +Inf
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(6.05)

    def test_reset_zeroes_in_place_keeping_bindings(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        hist = registry.histogram("h", bounds=(1.0,))
        counter.inc(3)
        hist.observe(0.5)
        registry.reset()
        assert counter.value == 0
        counter.inc()  # prebound instrument still registered
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 1
        assert snap["histograms"]["h"]["count"] == 0


class TestSnapshotDelta:
    def test_delta_subtracts_and_drops_zero_entries(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.counter("b").inc(1)
        base = registry.snapshot()
        registry.counter("a").inc(3)
        delta = registry.snapshot_delta(base)
        assert delta["counters"] == {"a": 3}  # b unchanged -> dropped

    def test_delta_of_histogram(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", bounds=(1.0,))
        hist.observe(0.5)
        base = registry.snapshot()
        hist.observe(2.0)
        delta = registry.snapshot_delta(base)["histograms"]["h"]
        assert delta["counts"] == [0, 1]
        assert delta["count"] == 1
        assert delta["sum"] == pytest.approx(2.0)


class TestMerge:
    def test_counters_add_and_keys_sort(self):
        merged = merge_snapshots([
            {"counters": {"b": 1, "a": 2}},
            {"counters": {"a": 3, "c": 1}},
        ])
        assert merged["counters"] == {"a": 5, "b": 1, "c": 1}
        assert list(merged["counters"]) == ["a", "b", "c"]

    def test_merge_is_associative_on_counters(self):
        s1 = {"counters": {"a": 1}}
        s2 = {"counters": {"a": 2, "b": 1}}
        s3 = {"counters": {"b": 4}}
        left = merge_snapshots([merge_snapshots([s1, s2]), s3])
        right = merge_snapshots([s1, merge_snapshots([s2, s3])])
        assert left["counters"] == right["counters"]

    def test_histogram_buckets_add_elementwise(self):
        hist = {"bounds": [1.0], "counts": [1, 2], "sum": 3.0, "count": 3}
        merged = merge_snapshots([
            {"histograms": {"h": hist}},
            {"histograms": {"h": dict(hist)}},
        ])
        assert merged["histograms"]["h"]["counts"] == [2, 4]
        assert merged["histograms"]["h"]["count"] == 6

    def test_gauges_last_wins(self):
        merged = merge_snapshots([
            {"gauges": {"g": 5.0}},
            {"gauges": {"g": 2.0}},
        ])
        assert merged["gauges"]["g"] == 2.0


class TestCacheStats:
    def test_summary_with_evictions(self):
        snapshot = {"counters": {
            "c.hit": 3, "c.miss": 1, "c.eviction": 2,
        }}
        assert cache_stats(snapshot, "c") == {
            "hits": 3, "misses": 1, "hit_rate": 0.75, "evictions": 2,
        }

    def test_unused_cache_returns_none(self):
        assert cache_stats({"counters": {}}, "nope") is None
