"""Profiling hooks: phase timers, slowest-grab board, pstats aggregation."""

import os

from repro.hosting import EcosystemConfig, build_ecosystem
from repro.obs.profiling import (
    Profiler,
    SLOWEST_N,
    aggregate_pstats,
    load_profile_summary,
    merge_profiles,
    render_profile_report,
    write_profile_summary,
)
from repro.scanner import StudyConfig, run_study_with_stats

SMALL_POPULATION = 320
BENCH_SEED = 2016


def _tiny_config(**overrides) -> StudyConfig:
    settings = dict(
        days=2,
        seed=404,
        run_probes=False,
        run_crossdomain=False,
        run_support_scans=False,
    )
    settings.update(overrides)
    return StudyConfig(**settings)


class TestProfilerPrimitives:
    def test_disabled_profiler_is_a_noop(self):
        profiler = Profiler()
        with profiler.phase("finalize"):
            pass
        profiler.observe_grab("a.example", 0.5)
        snap = profiler.snapshot()
        assert snap["phase_seconds"] == {}
        assert snap["slowest"] == []

    def test_phase_accumulates_time_and_count(self):
        profiler = Profiler()
        profiler.enable()
        for _ in range(3):
            with profiler.phase("finalize"):
                pass
        snap = profiler.snapshot()
        assert snap["phase_counts"]["finalize"] == 3
        assert snap["phase_seconds"]["finalize"] >= 0.0

    def test_slowest_grabs_keeps_top_n_sorted(self):
        profiler = Profiler()
        profiler.enable()
        for i in range(SLOWEST_N + 10):
            profiler.observe_grab(f"site{i}.example", float(i))
        slowest = profiler.slowest()
        assert len(slowest) == SLOWEST_N
        seconds = [s for s, _ in slowest]
        assert seconds == sorted(seconds, reverse=True)
        assert slowest[0][1] == f"site{SLOWEST_N + 9}.example"

    def test_merge_profiles_sums_phases(self):
        a = {"phase_seconds": {"finalize": 1.0}, "phase_counts": {"finalize": 2},
             "slowest": [(0.5, "a.example")]}
        b = {"phase_seconds": {"finalize": 2.0}, "phase_counts": {"finalize": 1},
             "slowest": [(0.9, "b.example")]}
        merged = merge_profiles([a, b])
        assert merged["phase_seconds"]["finalize"] == 3.0
        assert merged["phase_counts"]["finalize"] == 3
        assert merged["slowest"][0][1] == "b.example"


class TestStudyProfiling:
    def test_profile_dir_written_and_renderable(self, tmp_path):
        ecosystem = build_ecosystem(
            EcosystemConfig(population=SMALL_POPULATION, seed=BENCH_SEED)
        )
        profile_dir = str(tmp_path / "profile")
        run_study_with_stats(
            ecosystem, _tiny_config(), shards=2, profile_dir=profile_dir,
        )
        names = sorted(os.listdir(profile_dir))
        assert names == [
            "profile.txt", "shard-00.pstats", "shard-01.pstats", "summary.json",
        ]
        summary = load_profile_summary(profile_dir)
        assert summary["schema"] == "repro-profile/1"
        assert summary["shards"] == 2
        assert summary["phase_seconds"]
        assert summary["top_functions"]
        report = render_profile_report(summary)
        assert "time by phase" in report
        assert "hottest functions" in report

    def test_aggregate_pstats_names_hot_functions(self, tmp_path):
        ecosystem = build_ecosystem(
            EcosystemConfig(population=SMALL_POPULATION, seed=BENCH_SEED)
        )
        profile_dir = str(tmp_path / "profile")
        run_study_with_stats(
            ecosystem, _tiny_config(), shards=1, profile_dir=profile_dir,
        )
        report_text, top = aggregate_pstats(profile_dir)
        assert "cumulative" in report_text
        functions = " ".join(entry["function"] for entry in top)
        assert "connect" in functions
