"""Progress/ETA tracker: shard-day accounting, idempotency, rendering."""

from repro.obs.progress import (
    ProgressTracker,
    format_duration,
    render_progress,
)


class _FakeClock:
    def __init__(self) -> None:
        self.value = 0.0

    def __call__(self) -> float:
        return self.value


def _tracker():
    clock = _FakeClock()
    tracker = ProgressTracker(clock=clock)
    return tracker, clock


class TestAccounting:
    def test_initial_snapshot_idle(self):
        tracker, _ = _tracker()
        snap = tracker.snapshot()
        assert snap["state"] == "idle"
        assert snap["fraction"] == 0.0
        assert snap["eta_s"] is None

    def test_day_units_accumulate(self):
        tracker, clock = _tracker()
        tracker.begin(shards=2, days=3)
        clock.value = 10.0
        tracker.day_completed(0, day=0, days=3, grabs=100)
        tracker.day_completed(0, day=1, days=3, grabs=50)
        snap = tracker.snapshot()
        assert snap["day_units"] == {"total": 6, "completed": 2}
        assert snap["grabs"] == 150
        assert snap["fraction"] == round(2 / 6, 6)

    def test_day_pushes_idempotent(self):
        tracker, _ = _tracker()
        tracker.begin(shards=1, days=2)
        tracker.day_completed(0, day=0, days=2)
        tracker.day_completed(0, day=0, days=2)  # duplicate push
        assert tracker.snapshot()["day_units"]["completed"] == 1

    def test_shard_completed_fills_remaining_days(self):
        tracker, _ = _tracker()
        tracker.begin(shards=2, days=3)
        tracker.day_completed(0, day=0, days=3)
        tracker.shard_completed(0)  # spool lagged: only 1 of 3 days seen
        snap = tracker.snapshot()
        assert snap["shards"]["completed"] == 1
        assert snap["day_units"]["completed"] == 3

    def test_eta_uses_live_rate_only(self):
        tracker, clock = _tracker()
        tracker.begin(shards=2, days=2)
        # One shard restored from a checkpoint: its units complete
        # instantly and must not poison the rate estimate.
        tracker.shard_completed(0, restored=True)
        clock.value = 8.0
        tracker.day_completed(1, day=0, days=2)
        snap = tracker.snapshot()
        # 1 live unit in 8s, 1 unit remaining -> ~8s to go.
        assert snap["eta_s"] == 8.0

    def test_finish_zeroes_eta(self):
        tracker, clock = _tracker()
        tracker.begin(shards=1, days=1)
        tracker.day_completed(0, day=0, days=1)
        tracker.shard_completed(0)
        clock.value = 3.0
        tracker.finish()
        snap = tracker.snapshot()
        assert snap["state"] == "done"
        assert snap["eta_s"] == 0.0
        assert snap["elapsed_s"] == 3.0

    def test_abort_state(self):
        tracker, _ = _tracker()
        tracker.begin(shards=1, days=1)
        tracker.finish(aborted=True)
        assert tracker.snapshot()["state"] == "aborted"


class TestRendering:
    def test_format_duration(self):
        assert format_duration(None) == "?"
        assert format_duration(5.4) == "5s"
        assert format_duration(94) == "1m34s"
        assert format_duration(3720) == "1h02m"

    def test_render_progress_line(self):
        tracker, clock = _tracker()
        tracker.begin(shards=4, days=2)
        clock.value = 10.0
        tracker.day_completed(0, day=0, days=2, grabs=500)
        line = render_progress(tracker.snapshot())
        assert "shards 0/4" in line
        assert "days 1/8" in line
        assert "eta" in line
        assert "\n" not in line
