"""Prometheus exposition correctness: escaping, naming, parse round-trip.

The text format (version 0.0.4) has sharp edges the exporter must get
right for real scrapers: label values escape backslash, double-quote,
and newline; metric names only contain ``[a-zA-Z0-9_:]``; HELP/TYPE
headers appear once per family in deterministic order; histogram
buckets are cumulative and end with ``+Inf``.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    parse_prometheus,
    render_prometheus,
    to_prom_snapshot,
)


def _snapshot(**sections) -> dict:
    base = {"counters": {}, "gauges": {}, "histograms": {}}
    base.update(sections)
    return base


class TestRendering:
    def test_names_are_sanitized_and_prefixed(self):
        prom = render_prometheus(_snapshot(
            counters={"scanner.grab-rate.v2": 7}
        ))
        assert "repro_scanner_grab_rate_v2_total 7" in prom

    def test_label_values_escaped(self):
        prom = render_prometheus(_snapshot(
            counters={'scanner.grab.failure{reason=a"b\\c\nd}': 1}
        ))
        assert 'reason="a\\"b\\\\c\\nd"' in prom
        # The rendered text must stay one sample per line.
        sample_lines = [
            line for line in prom.splitlines() if not line.startswith("#")
        ]
        assert len(sample_lines) == 1

    def test_help_and_type_once_per_family_in_order(self):
        prom = render_prometheus(_snapshot(counters={
            "scanner.grab.failure{reason=nxdomain}": 1,
            "scanner.grab.failure{reason=handshake}": 2,
            "scanner.grab.attempt": 3,
        }))
        lines = prom.splitlines()
        helps = [line for line in lines if line.startswith("# HELP")]
        types = [line for line in lines if line.startswith("# TYPE")]
        assert len(helps) == 2 and len(types) == 2
        # Families render in sorted order: attempt before failure.
        assert "attempt" in helps[0] and "failure" in helps[1]
        # Samples inside a family are sorted by label.
        failure_lines = [line for line in lines if "failure" in line
                         and not line.startswith("#")]
        assert "handshake" in failure_lines[0]
        assert "nxdomain" in failure_lines[1]

    def test_rendering_is_deterministic(self):
        snapshot = _snapshot(
            counters={"b.metric": 1, "a.metric{x=2}": 3},
            gauges={"g.metric": 1.5},
        )
        assert render_prometheus(snapshot) == render_prometheus(snapshot)

    def test_histogram_buckets_cumulative_with_inf(self):
        prom = render_prometheus(_snapshot(histograms={
            "scanner.grab.seconds": {
                "bounds": [0.1, 1.0],
                "counts": [2, 3, 1],  # 2 under 0.1, 3 under 1.0, 1 over
                "sum": 2.5,
                "count": 6,
            }
        }))
        assert '{le="0.1"} 2' in prom
        assert '{le="1.0"} 5' in prom
        assert '{le="+Inf"} 6' in prom
        assert "repro_scanner_grab_seconds_sum 2.5" in prom
        assert "repro_scanner_grab_seconds_count 6" in prom


class TestParseRoundTrip:
    def test_registry_snapshot_roundtrips(self):
        registry = MetricsRegistry()
        registry.counter("scanner.grab.attempt").value = 41
        registry.counter("scanner.grab.failure", reason="nxdomain").value = 4
        registry.gauge("engine.pending_shards").set(2.0)
        hist = registry.histogram("scanner.grab.seconds",
                                  bounds=(0.1, 0.5, 1.0))
        for value in (0.05, 0.3, 0.4, 0.9, 7.0):
            hist.observe(value)
        snapshot = registry.snapshot()
        parsed = parse_prometheus(render_prometheus(snapshot))
        assert parsed == to_prom_snapshot(snapshot)

    def test_escaped_label_values_roundtrip(self):
        snapshot = _snapshot(counters={
            'scanner.grab.failure{reason=we"ird\\pa\nth}': 9
        })
        parsed = parse_prometheus(render_prometheus(snapshot))
        assert parsed == to_prom_snapshot(snapshot)

    def test_empty_snapshot(self):
        assert parse_prometheus(render_prometheus(_snapshot())) == _snapshot()
