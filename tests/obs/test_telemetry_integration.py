"""Telemetry end-to-end: output neutrality and cross-process determinism.

The two hard constraints from the telemetry design:

* **Output-neutral** — enabling ``telemetry_dir`` must not change one
  byte of study output (the golden digest still holds), because no
  instrument touches seeded RNG state or record content.
* **Worker-independent** — merged counter totals are a function of the
  shard layout alone; running the same shards serially or in a process
  pool yields identical ``metrics.json`` counters (timing histograms
  are explicitly exempt — they measure wall clock).
"""

import json
import os

import pytest

from conftest import small_study_config
from repro.hosting import EcosystemConfig, build_ecosystem
from repro.obs import load_manifest, load_metrics, validate_manifest
from repro.obs.report import render_prometheus, render_stats_report
from repro.scanner import StudyConfig, run_study_with_stats, save_dataset

from scanner.test_golden_digest import GOLDEN_DIGEST, _dataset_digest

SMALL_POPULATION = 320
BENCH_SEED = 2016


def _tiny_config(**overrides) -> StudyConfig:
    """Daily sweeps only — big enough to exercise every counter family."""
    settings = dict(
        days=2,
        seed=404,
        run_probes=False,
        run_crossdomain=False,
        run_support_scans=False,
    )
    settings.update(overrides)
    return StudyConfig(**settings)


def _run_with_telemetry(tmp_path, name: str, *, workers: int = 1, **overrides):
    ecosystem = build_ecosystem(
        EcosystemConfig(population=SMALL_POPULATION, seed=BENCH_SEED)
    )
    telemetry_dir = tmp_path / name
    _, stats = run_study_with_stats(
        ecosystem,
        _tiny_config(**overrides),
        workers=workers,
        telemetry_dir=str(telemetry_dir),
    )
    return telemetry_dir, stats


class TestMergeDeterminism:
    def test_counters_identical_across_worker_counts(self, tmp_path):
        dirs = {
            workers: _run_with_telemetry(
                tmp_path, f"w{workers}", workers=workers, shards=2
            )[0]
            for workers in (1, 2)
        }
        serial = load_metrics(str(dirs[1]))
        pooled = load_metrics(str(dirs[2]))
        assert serial["counters"] == pooled["counters"]
        assert serial["gauges"] == pooled["gauges"]
        # Histograms measure wall clock: same keys, unpinned values.
        assert set(serial["histograms"]) == set(pooled["histograms"])


class TestTelemetryArtifacts:
    @pytest.fixture(scope="class")
    def telemetry(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("telemetry")
        directory, stats = _run_with_telemetry(tmp, "run")
        return directory, stats

    def test_all_four_files_written(self, telemetry):
        directory, _ = telemetry
        assert sorted(os.listdir(directory)) == [
            "manifest.json", "metrics.json", "metrics.prom", "trace.jsonl",
        ]

    def test_manifest_validates_and_matches_stats(self, telemetry):
        directory, stats = telemetry
        manifest = load_manifest(str(directory))
        assert validate_manifest(manifest) == []
        assert manifest["run"]["grabs"] == stats.grabs
        assert manifest["experiments"] == stats.scans_by_experiment
        assert manifest["seed"] == 404
        assert len(manifest["shards"]) == 1
        assert len(manifest["shards"][0]["day_seconds"]) == 2
        assert manifest["caches"]  # crypto caches saw traffic

    def test_metrics_cover_the_instrumented_layers(self, telemetry):
        directory, stats = telemetry
        counters = load_metrics(str(directory))["counters"]
        assert counters["scanner.grab.attempt"] == stats.grabs
        families = {key.split("{")[0].split(".")[0] for key in counters}
        assert {"scanner", "tls", "crypto", "x509", "experiment"} <= families
        # Client and server agree on completed handshakes.
        client = sum(
            v for k, v in counters.items() if k.startswith("tls.client.handshake")
        )
        server = sum(
            v for k, v in counters.items() if k.startswith("tls.server.handshake{")
        )
        assert client == server

    def test_trace_spans_are_valid_jsonl(self, telemetry):
        directory, _ = telemetry
        with open(directory / "trace.jsonl", "r", encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh]
        assert records, "tracing was enabled; spans expected"
        names = {record["name"] for record in records}
        assert "handshake" in names
        assert all(record["duration_s"] >= 0 for record in records)

    def test_renderers_accept_real_artifacts(self, telemetry):
        directory, _ = telemetry
        manifest = load_manifest(str(directory))
        metrics = load_metrics(str(directory))
        report = render_stats_report(manifest, metrics)
        assert "cache effectiveness" in report
        assert "per-shard timing" in report
        prom = render_prometheus(metrics)
        assert "repro_scanner_grab_attempt_total" in prom
        assert "# TYPE repro_scanner_grab_seconds histogram" in prom
        # Exposition matches what the engine wrote at study time.
        assert (directory / "metrics.prom").read_text() == prom


class TestOutputNeutrality:
    def test_golden_digest_unchanged_with_telemetry_enabled(self, tmp_path):
        """The full reference study, telemetry ON, byte-for-byte pinned."""
        from conftest import SMALL_POPULATION as POP, SMALL_SEED

        ecosystem = build_ecosystem(
            EcosystemConfig(population=POP, seed=SMALL_SEED)
        )
        dataset, _ = run_study_with_stats(
            ecosystem,
            small_study_config(),
            telemetry_dir=str(tmp_path / "telemetry"),
        )
        out = tmp_path / "golden"
        save_dataset(dataset, str(out))
        assert _dataset_digest(out) == GOLDEN_DIGEST
        manifest = load_manifest(str(tmp_path / "telemetry"))
        assert validate_manifest(manifest) == []

    def test_golden_digest_unchanged_with_live_plane_enabled(self, tmp_path):
        """The full reference study with the PR-8 live plane on —
        HTTP exporter, event log, progress, per-shard profiling — is
        still byte-for-byte the golden dataset."""
        from conftest import SMALL_POPULATION as POP, SMALL_SEED

        from repro.obs.exporter import LivePlane

        ecosystem = build_ecosystem(
            EcosystemConfig(population=POP, seed=SMALL_SEED)
        )
        plane = LivePlane(
            serve_port=0, events_path=str(tmp_path / "events.jsonl")
        ).start()
        try:
            dataset, _ = run_study_with_stats(
                ecosystem,
                small_study_config(),
                live=plane,
                profile_dir=str(tmp_path / "profile"),
            )
        finally:
            plane.stop()
        out = tmp_path / "golden"
        save_dataset(dataset, str(out))
        assert _dataset_digest(out) == GOLDEN_DIGEST

    def test_telemetry_dir_may_not_be_the_dataset_dir(self, tmp_path):
        ecosystem = build_ecosystem(
            EcosystemConfig(population=SMALL_POPULATION, seed=BENCH_SEED)
        )
        out = tmp_path / "data"
        with pytest.raises(ValueError, match="telemetry_dir"):
            run_study_with_stats(
                ecosystem,
                _tiny_config(),
                stream_dir=str(out),
                telemetry_dir=str(out),
            )
