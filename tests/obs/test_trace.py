"""Span tracing: disabled no-op, ring buffer bounds, JSONL export."""

import json

from repro.obs.trace import Tracer, export_jsonl


def test_disabled_tracer_records_nothing():
    tracer = Tracer()
    with tracer.span("op", key="v"):
        pass
    assert len(tracer) == 0
    assert tracer.recorded == 0


def test_enabled_tracer_records_span_with_attrs():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("handshake", domain="example.com"):
        pass
    records = tracer.drain()
    assert len(records) == 1
    record = records[0]
    assert record["name"] == "handshake"
    assert record["attrs"] == {"domain": "example.com"}
    assert record["duration_s"] >= 0.0
    assert isinstance(record["pid"], int)
    assert len(tracer) == 0  # drain empties the buffer


def test_ring_buffer_keeps_only_most_recent():
    tracer = Tracer(capacity=3)
    tracer.enable()
    for index in range(5):
        with tracer.span("op", i=index):
            pass
    records = tracer.drain()
    assert [r["attrs"]["i"] for r in records] == [2, 3, 4]
    assert tracer.dropped == 2
    assert tracer.recorded == 5


def test_disable_stops_recording():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("kept"):
        pass
    tracer.disable()
    with tracer.span("ignored"):
        pass
    assert [r["name"] for r in tracer.drain()] == ["kept"]


def test_export_jsonl_round_trips(tmp_path):
    path = tmp_path / "sub" / "trace.jsonl"
    records = [{"name": "a", "duration_s": 0.25}, {"name": "b"}]
    written = export_jsonl(str(path), records)
    assert written == 2
    loaded = [json.loads(line) for line in path.read_text().splitlines()]
    assert loaded == records
