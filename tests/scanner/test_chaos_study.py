"""Chaos-mode determinism: with a fixed chaos profile the study output
is a pure function of configuration — identical across repeat runs and
across worker counts, even though faults fire and retries back off."""

import hashlib
import os

import pytest

from repro.faults.plan import PROFILE_SCHEMA
from repro.faults.retry import RetryPolicy
from repro.hosting import EcosystemConfig, build_ecosystem
from repro.scanner import StudyConfig, run_study_with_stats

SMALL_POPULATION = 320
SEED = 2016

#: Full-span windows so chaos is guaranteed to bite during the scans.
CHAOS_PROFILE = {
    "schema": PROFILE_SCHEMA,
    "seed": 7,
    "windows": [
        {"kind": "outage", "start_day": 0, "end_day": 2, "rate": 0.3},
        {"kind": "reset", "start_day": 0, "end_day": 2, "rate": 0.1,
         "period_seconds": 600.0},
        {"kind": "nxdomain", "start_day": 0, "end_day": 2, "rate": 0.05},
        {"kind": "latency", "start_day": 0, "end_day": 2, "rate": 0.05,
         "delay_seconds": 15.0, "period_seconds": 300.0},
    ],
}


def _config() -> StudyConfig:
    return StudyConfig(
        days=2,
        seed=404,
        probe_domain_count=40,
        dhe_support_day=1,
        ecdhe_support_day=1,
        ticket_support_day=1,
        crossdomain_day=1,
        session_probe_day=1,
        ticket_probe_day=1,
        shards=2,
        chaos=CHAOS_PROFILE,
        retry=RetryPolicy(max_attempts=2, breaker_threshold=4),
    )


def _dataset_digest(directory) -> str:
    digest = hashlib.sha256()
    for name in sorted(os.listdir(directory)):
        digest.update(name.encode())
        with open(os.path.join(directory, name), "rb") as fh:
            digest.update(fh.read())
    return digest.hexdigest()


class TestChaosDeterminism:
    @pytest.fixture(scope="class")
    def chaos_runs(self, tmp_path_factory):
        runs = {}
        for label, workers in (("first", 1), ("second", 1), ("pooled", 2)):
            out = tmp_path_factory.mktemp(f"chaos-{label}")
            telemetry = tmp_path_factory.mktemp(f"chaos-{label}-telemetry")
            ecosystem = build_ecosystem(
                EcosystemConfig(population=SMALL_POPULATION, seed=SEED)
            )
            dataset, stats = run_study_with_stats(
                ecosystem, _config(), workers=workers,
                stream_dir=str(out), telemetry_dir=str(telemetry),
            )
            runs[label] = (out, telemetry, dataset, stats)
        return runs

    def test_same_profile_same_bytes(self, chaos_runs):
        first, _, _, _ = chaos_runs["first"]
        second, _, _, _ = chaos_runs["second"]
        assert _dataset_digest(first) == _dataset_digest(second)

    def test_workers_do_not_change_chaos_output(self, chaos_runs):
        serial, _, _, serial_stats = chaos_runs["first"]
        pooled, _, _, pooled_stats = chaos_runs["pooled"]
        assert _dataset_digest(serial) == _dataset_digest(pooled)
        assert serial_stats.grabs == pooled_stats.grabs

    def test_merged_metrics_are_worker_count_independent(self, chaos_runs):
        # Counters (failures by reason, retries, injected faults) merge
        # in shard order from per-shard deltas, so the totals depend
        # only on the shard layout, never on the worker pool.
        import json
        import os

        counters = {}
        for label in ("first", "pooled"):
            _, telemetry, _, _ = chaos_runs[label]
            with open(os.path.join(str(telemetry), "metrics.json")) as fh:
                counters[label] = json.load(fh)["counters"]
        assert counters["first"] == counters["pooled"]
        assert any(
            key.startswith("faults.injected") for key in counters["first"]
        )

    def test_chaos_actually_bit(self, chaos_runs):
        _, _, dataset, _ = chaos_runs["first"]
        failed = [o for o in dataset.ticket_daily if not o.success]
        assert failed, "chaos profile injected no failures"
        errors = " ".join(o.error for o in failed)
        assert "injected outage" in errors

    def test_grabs_exceed_schedule_under_retry(self, chaos_runs):
        # max_attempts=2 on retryable failures: the grab count must be
        # strictly larger than the number of observations recorded.
        _, _, dataset, stats = chaos_runs["first"]
        recorded = sum(
            len(getattr(dataset, name))
            for name in ("ticket_daily", "dhe_daily", "ecdhe_daily")
        )
        assert stats.grabs > recorded
