"""Checkpoint/resume tests: a killed study continues byte-identically.

The contract under test: each shard is a pure function of (study
config, ecosystem config, shard_id, shard_count), so resuming from a
partial checkpoint re-executes only the missing shards and the merged
dataset directory carries no trace of the interruption.
"""

import hashlib
import os

import pytest

from repro.faults.retry import RetryPolicy
from repro.hosting import EcosystemConfig, build_ecosystem
from repro.scanner import (
    EVERY_DAY,
    CheckpointMismatch,
    CheckpointStore,
    Experiment,
    ExperimentRegistry,
    StudyAborted,
    StudyConfig,
    StudyEngine,
    run_study,
    run_study_with_stats,
)
from repro.scanner.checkpoint import (
    checkpoint_fingerprint,
    study_config_from_dict,
    study_config_to_dict,
)
from repro.scanner.engine import run_shard

SMALL_POPULATION = 320
SEED = 2016


def _config(**overrides) -> StudyConfig:
    settings = dict(
        days=2,
        seed=404,
        probe_domain_count=40,
        dhe_support_day=1,
        ecdhe_support_day=1,
        ticket_support_day=1,
        crossdomain_day=1,
        session_probe_day=1,
        ticket_probe_day=1,
    )
    settings.update(overrides)
    return StudyConfig(**settings)


def _ecosystem():
    return build_ecosystem(
        EcosystemConfig(population=SMALL_POPULATION, seed=SEED)
    )


def _dataset_digest(directory) -> str:
    digest = hashlib.sha256()
    for name in sorted(os.listdir(directory)):
        digest.update(name.encode())
        with open(os.path.join(directory, name), "rb") as fh:
            digest.update(fh.read())
    return digest.hexdigest()


class TestConfigRoundTrip:
    def test_execution_fields_are_excluded(self):
        config = _config(workers=8, stream_dir="/somewhere", shards=4)
        data = study_config_to_dict(config)
        assert "workers" not in data and "stream_dir" not in data
        assert data["shards"] == 4

    def test_round_trip_rebuilds_equivalent_config(self):
        config = _config(retry=RetryPolicy(max_attempts=3, breaker_threshold=5))
        rebuilt = study_config_from_dict(
            study_config_to_dict(config), workers=2, stream_dir="/elsewhere"
        )
        assert rebuilt.retry == config.retry
        assert rebuilt.days == config.days and rebuilt.seed == config.seed
        assert rebuilt.workers == 2 and rebuilt.stream_dir == "/elsewhere"

    def test_fingerprint_tracks_output_affecting_fields_only(self):
        ecosystem_config = EcosystemConfig(population=SMALL_POPULATION, seed=SEED)
        base = checkpoint_fingerprint(_config(), ecosystem_config, 4)
        same = checkpoint_fingerprint(
            _config(workers=16, stream_dir="/x"), ecosystem_config, 4
        )
        assert base == same
        assert base != checkpoint_fingerprint(_config(seed=405), ecosystem_config, 4)
        assert base != checkpoint_fingerprint(_config(), ecosystem_config, 2)


class TestResume:
    SHARDS = 4

    @pytest.fixture(scope="class")
    def uninterrupted(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("uninterrupted")
        run_study(
            _ecosystem(), _config(shards=self.SHARDS), stream_dir=str(out)
        )
        return out

    def test_checkpoint_removed_after_clean_run(self, uninterrupted):
        assert not os.path.exists(os.path.join(str(uninterrupted), "checkpoint"))
        assert not os.path.exists(os.path.join(str(uninterrupted), "shards"))

    def test_resumed_run_is_byte_identical(self, uninterrupted, tmp_path):
        out = str(tmp_path / "resumed")
        config = _config(shards=self.SHARDS)
        ecosystem = _ecosystem()

        # Simulate a run killed after shard 1 of 4 finished: checkpoint
        # exactly what the engine would have checkpointed, then resume.
        store = CheckpointStore(out)
        store.reset(checkpoint_fingerprint(config, ecosystem.config, self.SHARDS))
        partial = run_shard(
            _ecosystem(), config, shard_id=1, shard_count=self.SHARDS,
            stream_dir=os.path.join(out, "shards", "01"),
        )
        store.save_shard(partial)
        assert store.completed_shards() == [1]

        run_study(ecosystem, config, stream_dir=out, resume=True)
        assert _dataset_digest(out) == _dataset_digest(str(uninterrupted))

    def test_resume_with_nothing_to_do_just_merges(self, uninterrupted, tmp_path):
        out = str(tmp_path / "complete")
        config = _config(shards=2)
        ecosystem = _ecosystem()
        store = CheckpointStore(out)
        store.reset(checkpoint_fingerprint(config, ecosystem.config, 2))
        for shard_id in range(2):
            store.save_shard(run_shard(
                _ecosystem(), config, shard_id=shard_id, shard_count=2,
                stream_dir=os.path.join(out, "shards", f"{shard_id:02d}"),
            ))
        _, stats = run_study_with_stats(
            ecosystem, config, stream_dir=out, resume=True
        )
        assert stats.grabs > 0
        assert not os.path.exists(os.path.join(out, "checkpoint"))

    def test_resume_without_checkpoint_is_an_error(self, tmp_path):
        with pytest.raises(CheckpointMismatch, match="nothing to resume"):
            run_study(
                _ecosystem(), _config(shards=2),
                stream_dir=str(tmp_path / "empty"), resume=True,
            )

    def test_resume_requires_stream_dir(self):
        with pytest.raises(ValueError, match="stream_dir"):
            run_study(_ecosystem(), _config(shards=2), resume=True)

    def test_resume_under_different_config_is_refused(self, tmp_path):
        out = str(tmp_path / "drift")
        ecosystem = _ecosystem()
        store = CheckpointStore(out)
        store.reset(
            checkpoint_fingerprint(_config(shards=2), ecosystem.config, 2)
        )
        with pytest.raises(CheckpointMismatch, match="different study"):
            run_study(
                ecosystem, _config(shards=2, seed=405),
                stream_dir=out, resume=True,
            )


class _FlakyExperiment(Experiment):
    """Grabs one domain per day; optionally blows up on shard 1."""

    name = "flaky"
    channels = ()

    def __init__(self, fail: bool):
        self.fail = fail

    def schedule(self, config):
        return EVERY_DAY

    def run_day(self, ctx, day):
        if self.fail and ctx.shard_id == 1:
            raise RuntimeError("injected shard failure")
        if ctx.today_owned:
            rank, name = ctx.today_owned[0]
            ctx.grabber.grab(name, rank=rank)


class TestAbort:
    def _engine(self, fail: bool) -> StudyEngine:
        config = _config(
            days=1, run_probes=False, run_crossdomain=False,
            run_support_scans=False,
        )
        return StudyEngine(
            config, registry=ExperimentRegistry([_FlakyExperiment(fail)])
        )

    def test_shard_failure_keeps_siblings_checkpointed(self, tmp_path):
        out = str(tmp_path / "aborted")
        with pytest.raises(StudyAborted) as excinfo:
            self._engine(fail=True).run(
                _ecosystem(), shards=2, workers=1, stream_dir=out
            )
        aborted = excinfo.value
        assert aborted.failed_shards == [1]
        assert aborted.completed_shards == [0]
        assert aborted.checkpoint_dir == os.path.join(out, "checkpoint")
        assert CheckpointStore(out).completed_shards() == [0]
        assert "injected shard failure" in str(aborted)

        # A later resume (bug fixed) completes from the kept checkpoint
        # and produces the same bytes as a never-failed run.
        self._engine(fail=False).run(
            _ecosystem(), shards=2, workers=1, stream_dir=out, resume=True
        )
        clean = str(tmp_path / "clean")
        self._engine(fail=False).run(
            _ecosystem(), shards=2, workers=1, stream_dir=clean
        )
        assert _dataset_digest(out) == _dataset_digest(clean)

    def test_fail_fast_stops_dispatching(self, tmp_path):
        config = _config(
            days=1, run_probes=False, run_crossdomain=False,
            run_support_scans=False,
        )

        class _FailFirst(Experiment):
            name = "fail-first"
            channels = ()

            def schedule(self, config):
                return EVERY_DAY

            def run_day(self, ctx, day):
                if ctx.shard_id == 0:
                    raise RuntimeError("boom")

        engine = StudyEngine(config, registry=ExperimentRegistry([_FailFirst()]))
        out = str(tmp_path / "failfast")
        with pytest.raises(StudyAborted) as excinfo:
            engine.run(
                _ecosystem(), shards=3, workers=1,
                stream_dir=out, fail_fast=True,
            )
        # Shard 0 failed first; fail_fast stopped before shards 1 and 2.
        assert excinfo.value.failed_shards == [0]
        assert excinfo.value.completed_shards == []

    def test_unstreamed_abort_reports_no_checkpoint(self):
        with pytest.raises(StudyAborted, match="nothing was checkpointed") as excinfo:
            self._engine(fail=True).run(_ecosystem(), shards=2, workers=1)
        assert excinfo.value.checkpoint_dir is None
