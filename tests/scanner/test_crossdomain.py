"""Cross-domain session-cache probing tests."""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.scanner import CrossDomainConfig, ProbeTarget, ZGrabber, cross_domain_cache_probe


@pytest.fixture()
def ecosystem(small_ecosystem_factory):
    return small_ecosystem_factory(population=380, seed=44, failure_rate=0.0)


@pytest.fixture()
def grabber(ecosystem):
    return ZGrabber(ecosystem, DeterministicRandom(909))


def targets_for(ecosystem, domains):
    targets = []
    for domain in domains:
        address = ecosystem.dns.resolve_all(domain.name)[0]
        autonomous_system = ecosystem.as_registry.lookup(address)
        targets.append(
            ProbeTarget(
                domain=domain.name,
                ip=str(address),
                asn=autonomous_system.asn if autonomous_system else None,
            )
        )
    return targets


def test_provider_domains_share_cache(ecosystem, grabber):
    cloudflare = [d for d in ecosystem.domains if d.provider == "cloudflare"][:12]
    # Restrict to one cache group so every pair genuinely shares.
    cache_id = id(cloudflare[0].session_cache)
    group = [d for d in cloudflare if id(d.session_cache) == cache_id][:8]
    edges = cross_domain_cache_probe(
        grabber, targets_for(ecosystem, group), DeterministicRandom(1)
    )
    assert edges
    names = {d.name for d in group}
    for edge in edges:
        assert edge.origin in names and edge.acceptor in names


def test_independent_domains_never_link(ecosystem, grabber):
    independents = [
        d for d in ecosystem.domains
        if d.provider is None and d.https and d.behavior.resumes_session_ids
        and d.behavior.trusted_cert
    ][:10]
    edges = cross_domain_cache_probe(
        grabber, targets_for(ecosystem, independents), DeterministicRandom(2)
    )
    assert edges == []


def test_distinct_cache_groups_never_link(ecosystem, grabber):
    cloudflare = [d for d in ecosystem.domains if d.provider == "cloudflare"]
    groups = {}
    for domain in cloudflare:
        groups.setdefault(id(domain.session_cache), []).append(domain)
    group_a, group_b = list(groups.values())[:2]
    mixed = group_a[:4] + group_b[:4]
    edges = cross_domain_cache_probe(
        grabber, targets_for(ecosystem, mixed), DeterministicRandom(3)
    )
    a_names = {d.name for d in group_a}
    for edge in edges:
        # Edges must stay within one true cache group.
        assert (edge.origin in a_names) == (edge.acceptor in a_names)


def test_fanout_limits_respected(ecosystem, grabber):
    cloudflare = [d for d in ecosystem.domains if d.provider == "cloudflare"][:20]
    config = CrossDomainConfig(max_same_as=2, max_same_ip=2)
    before = grabber.grabs
    cross_domain_cache_probe(
        grabber, targets_for(ecosystem, cloudflare), DeterministicRandom(4), config
    )
    # Each origin costs 1 handshake + at most 4 peer probes.
    assert grabber.grabs - before <= len(cloudflare) * 5


def test_edge_annotations(ecosystem, grabber):
    cloudflare = [d for d in ecosystem.domains if d.provider == "cloudflare"][:8]
    edges = cross_domain_cache_probe(
        grabber, targets_for(ecosystem, cloudflare), DeterministicRandom(5)
    )
    for edge in edges:
        assert edge.via_same_ip != edge.via_same_as  # exactly one route


def test_probe_handles_unreachable_targets(ecosystem, grabber):
    targets = [ProbeTarget(domain="dead.example", ip="10.99.99.99", asn=None)]
    assert cross_domain_cache_probe(grabber, targets, DeterministicRandom(6)) == []
