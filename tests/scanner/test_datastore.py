"""Datastore tests: streaming writers, lazy views, and the ScanIndex."""

import pytest

from repro.scanner.datastore import (
    JsonlWriter,
    LazyRecordView,
    ScanIndex,
    channel_path,
    concatenate_channels,
    open_channel_views,
    open_channel_writers,
    read_meta,
    write_meta,
)
from repro.scanner.records import CHANNELS, ScanObservation


def obs(domain, day, ip="10.0.0.1", stek=None, kex_kind=None, success=True,
        cipher="TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA"):
    return ScanObservation(
        domain=domain, day=day, timestamp=day * 86400.0, ip=ip,
        success=success, cipher=cipher if success else None,
        ticket_issued=stek is not None, stek_id=stek, kex_kind=kex_kind,
    )


@pytest.fixture()
def index():
    return ScanIndex([
        obs("a.com", 0, stek="k1", kex_kind="ecdhe"),
        obs("a.com", 1, stek="k1", kex_kind="ecdhe"),
        obs("a.com", 2, stek="k2", kex_kind="ecdhe"),
        obs("b.com", 0, stek="k1", kex_kind="ecdhe", ip="10.0.0.2"),
        obs("c.com", 0, kex_kind="dhe", ip="10.0.0.3"),
        obs("down.com", 1, success=False, ip=""),
    ])


def test_len_and_stats(index):
    assert len(index) == 6
    stats = index.stats()
    assert stats.observations == 6
    assert stats.domains == 4
    assert stats.days == 3
    assert stats.success_rate == pytest.approx(5 / 6)


def test_query_by_domain(index):
    rows = index.query(domain="a.com")
    assert len(rows) == 3
    assert all(r.domain == "a.com" for r in rows)


def test_query_conjunction(index):
    rows = index.query(domain="a.com", day=2)
    assert len(rows) == 1
    assert rows[0].stek_id == "k2"


def test_query_success_flag(index):
    assert len(index.query(success=False)) == 1
    assert len(index.query(day=1, success=True)) == 1


def test_query_no_match(index):
    assert index.query(domain="nope.com") == []
    assert index.query(domain="a.com", day=9) == []


def test_query_unknown_field_rejected(index):
    with pytest.raises(ValueError):
        index.query(flavor="chocolate")


def test_query_by_kex_kind(index):
    assert len(index.query(kex_kind="dhe")) == 1
    assert len(index.query(kex_kind="ecdhe")) == 4


def test_domains_with_stek(index):
    assert index.domains_with_stek("k1") == {"a.com", "b.com"}
    assert index.domains_with_stek("k2") == {"a.com"}
    assert index.domains_with_stek("unknown") == set()


def test_stek_ids_in_first_seen_order(index):
    assert index.stek_ids_for("a.com") == ["k1", "k2"]
    assert index.stek_ids_for("c.com") == []


def test_timeline(index):
    assert index.timeline("a.com") == [(0, "k1"), (1, "k1"), (2, "k2")]
    assert index.timeline("down.com") == []  # failures excluded


def test_domains_and_days(index):
    assert index.domains() == ["a.com", "b.com", "c.com", "down.com"]
    assert index.days() == [0, 1, 2]


def test_incremental_add(index):
    index.add(obs("new.com", 5, stek="k9"))
    assert index.query(domain="new.com")[0].day == 5
    assert 5 in index.days()


def test_iteration(index):
    assert len(list(index)) == 6


def test_empty_index():
    index = ScanIndex()
    assert len(index) == 0
    assert index.stats().success_rate == 0.0
    assert index.query(domain="x") == []


class TestStreamingStorage:
    """JsonlWriter / LazyRecordView — the scan engine's spill path."""

    def test_writer_appends_and_counts(self, tmp_path):
        path = str(tmp_path / "obs.jsonl")
        with JsonlWriter(path) as writer:
            writer.append(obs("a.com", 0))
            assert writer.append_many([obs("b.com", 0), obs("c.com", 1)]) == 2
            assert writer.count == 3
        view = LazyRecordView(path, ScanObservation)
        assert len(view) == 3
        assert [o.domain for o in view] == ["a.com", "b.com", "c.com"]

    def test_writer_truncates_on_create(self, tmp_path):
        path = str(tmp_path / "obs.jsonl")
        with JsonlWriter(path) as writer:
            writer.append(obs("old.com", 0))
        with JsonlWriter(path) as writer:
            assert writer.count == 0
        assert not LazyRecordView(path, ScanObservation)

    def test_view_is_reiterable(self, tmp_path):
        path = str(tmp_path / "obs.jsonl")
        with JsonlWriter(path) as writer:
            writer.append_many([obs("a.com", d) for d in range(4)])
        view = LazyRecordView(path, ScanObservation)
        assert [o.day for o in view] == [0, 1, 2, 3]
        assert [o.day for o in view] == [0, 1, 2, 3]  # second pass works

    def test_view_indexing_and_slicing(self, tmp_path):
        path = str(tmp_path / "obs.jsonl")
        rows = [obs(f"d{i}.com", i) for i in range(5)]
        with JsonlWriter(path) as writer:
            writer.append_many(rows)
        view = LazyRecordView(path, ScanObservation)
        assert view[0] == rows[0]
        assert view[4] == rows[4]
        assert view[-1] == rows[-1]
        assert view[1:3] == rows[1:3]
        with pytest.raises(IndexError):
            view[5]

    def test_view_equality_against_lists_and_views(self, tmp_path):
        path = str(tmp_path / "obs.jsonl")
        rows = [obs("a.com", 0), obs("b.com", 1)]
        with JsonlWriter(path) as writer:
            writer.append_many(rows)
        view = LazyRecordView(path, ScanObservation)
        assert view == rows
        assert rows == list(view)
        assert view == LazyRecordView(path, ScanObservation)
        assert view != rows[:1]
        assert view != "not a sequence"

    def test_empty_and_missing_views(self, tmp_path):
        missing = LazyRecordView(str(tmp_path / "nope.jsonl"), ScanObservation)
        assert len(missing) == 0
        assert not missing
        assert list(missing) == []
        assert missing == []

    def test_channel_writers_cover_every_channel(self, tmp_path):
        directory = str(tmp_path / "ds")
        writers = open_channel_writers(directory)
        assert set(writers) == set(CHANNELS)
        for writer in writers.values():
            writer.close()
        views = open_channel_views(directory)
        assert set(views) == set(CHANNELS)
        for name, view in views.items():
            assert view.path == channel_path(directory, name)
            assert len(view) == 0  # writers created empty files

    def test_concatenate_channels_preserves_shard_order(self, tmp_path):
        parts = []
        for shard in range(3):
            part = str(tmp_path / f"part{shard}")
            writers = open_channel_writers(part)
            writers["ticket_daily"].append(obs(f"shard{shard}.com", shard))
            for writer in writers.values():
                writer.close()
            parts.append(part)
        out = str(tmp_path / "merged")
        concatenate_channels(parts, out)
        merged = open_channel_views(out)["ticket_daily"]
        assert [o.domain for o in merged] == [
            "shard0.com", "shard1.com", "shard2.com",
        ]
        assert len(open_channel_views(out)["dhe_daily"]) == 0

    def test_meta_roundtrip(self, tmp_path):
        directory = str(tmp_path / "ds")
        write_meta(directory, {"days": 7, "ranks": {"a.com": 1}})
        assert read_meta(directory) == {"days": 7, "ranks": {"a.com": 1}}


def test_index_against_study(small_study):
    """Index a real study corpus and cross-check the §5.2 lookup."""
    _, dataset = small_study
    index = ScanIndex(dataset.ticket_daily)
    assert len(index) == len(dataset.ticket_daily)
    timeline = index.timeline("yahoo.com")
    assert timeline
    ids = {stek for _, stek in timeline if stek}
    assert len(ids) == 1  # yahoo never rotates
    sharing = index.domains_with_stek(next(iter(ids)))
    assert sharing == {"yahoo.com"}
