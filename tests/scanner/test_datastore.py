"""ScanIndex (Censys-like datastore) tests."""

import pytest

from repro.scanner.datastore import ScanIndex
from repro.scanner.records import ScanObservation


def obs(domain, day, ip="10.0.0.1", stek=None, kex_kind=None, success=True,
        cipher="TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA"):
    return ScanObservation(
        domain=domain, day=day, timestamp=day * 86400.0, ip=ip,
        success=success, cipher=cipher if success else None,
        ticket_issued=stek is not None, stek_id=stek, kex_kind=kex_kind,
    )


@pytest.fixture()
def index():
    return ScanIndex([
        obs("a.com", 0, stek="k1", kex_kind="ecdhe"),
        obs("a.com", 1, stek="k1", kex_kind="ecdhe"),
        obs("a.com", 2, stek="k2", kex_kind="ecdhe"),
        obs("b.com", 0, stek="k1", kex_kind="ecdhe", ip="10.0.0.2"),
        obs("c.com", 0, kex_kind="dhe", ip="10.0.0.3"),
        obs("down.com", 1, success=False, ip=""),
    ])


def test_len_and_stats(index):
    assert len(index) == 6
    stats = index.stats()
    assert stats.observations == 6
    assert stats.domains == 4
    assert stats.days == 3
    assert stats.success_rate == pytest.approx(5 / 6)


def test_query_by_domain(index):
    rows = index.query(domain="a.com")
    assert len(rows) == 3
    assert all(r.domain == "a.com" for r in rows)


def test_query_conjunction(index):
    rows = index.query(domain="a.com", day=2)
    assert len(rows) == 1
    assert rows[0].stek_id == "k2"


def test_query_success_flag(index):
    assert len(index.query(success=False)) == 1
    assert len(index.query(day=1, success=True)) == 1


def test_query_no_match(index):
    assert index.query(domain="nope.com") == []
    assert index.query(domain="a.com", day=9) == []


def test_query_unknown_field_rejected(index):
    with pytest.raises(ValueError):
        index.query(flavor="chocolate")


def test_query_by_kex_kind(index):
    assert len(index.query(kex_kind="dhe")) == 1
    assert len(index.query(kex_kind="ecdhe")) == 4


def test_domains_with_stek(index):
    assert index.domains_with_stek("k1") == {"a.com", "b.com"}
    assert index.domains_with_stek("k2") == {"a.com"}
    assert index.domains_with_stek("unknown") == set()


def test_stek_ids_in_first_seen_order(index):
    assert index.stek_ids_for("a.com") == ["k1", "k2"]
    assert index.stek_ids_for("c.com") == []


def test_timeline(index):
    assert index.timeline("a.com") == [(0, "k1"), (1, "k1"), (2, "k2")]
    assert index.timeline("down.com") == []  # failures excluded


def test_domains_and_days(index):
    assert index.domains() == ["a.com", "b.com", "c.com", "down.com"]
    assert index.days() == [0, 1, 2]


def test_incremental_add(index):
    index.add(obs("new.com", 5, stek="k9"))
    assert index.query(domain="new.com")[0].day == 5
    assert 5 in index.days()


def test_iteration(index):
    assert len(list(index)) == 6


def test_empty_index():
    index = ScanIndex()
    assert len(index) == 0
    assert index.stats().success_rate == 0.0
    assert index.query(domain="x") == []


def test_index_against_study(small_study):
    """Index a real study corpus and cross-check the §5.2 lookup."""
    _, dataset = small_study
    index = ScanIndex(dataset.ticket_daily)
    assert len(index) == len(dataset.ticket_daily)
    timeline = index.timeline("yahoo.com")
    assert timeline
    ids = {stek for _, stek in timeline if stek}
    assert len(ids) == 1  # yahoo never rotates
    sharing = index.domains_with_stek(next(iter(ids)))
    assert sharing == {"yahoo.com"}
