"""Sharded streaming scan-engine tests.

The load-bearing guarantee: ``workers`` is pure execution parallelism —
a sharded study merged from a process pool is byte-for-byte identical
to the same shards run serially in one process.  Only ``shards``
(the deterministic population partition) may change output.
"""

import hashlib
import os

import pytest

from repro.hosting import EcosystemConfig, build_ecosystem
from repro.scanner import (
    EVERY_DAY,
    Experiment,
    ExperimentRegistry,
    StudyConfig,
    StudyEngine,
    default_registry,
    run_study,
    run_study_with_stats,
    shard_of,
)

# The smallest population the ecosystem builder accepts (provider +
# notable floors) — the determinism fixture's "benchmark seed" corpus.
SMALL_POPULATION = 320
BENCH_SEED = 2016


def _small_config(**overrides) -> StudyConfig:
    settings = dict(
        days=2,
        seed=404,
        probe_domain_count=40,
        dhe_support_day=1,
        ecdhe_support_day=1,
        ticket_support_day=1,
        crossdomain_day=1,
        session_probe_day=1,
        ticket_probe_day=1,
    )
    settings.update(overrides)
    return StudyConfig(**settings)


def _dataset_digest(directory) -> str:
    digest = hashlib.sha256()
    for name in sorted(os.listdir(directory)):
        digest.update(name.encode())
        with open(os.path.join(directory, name), "rb") as fh:
            digest.update(fh.read())
    return digest.hexdigest()


class TestShardDeterminism:
    """run_study(workers=4) must equal run_study(workers=1), byte for byte."""

    @pytest.fixture(scope="class")
    def sharded_runs(self, tmp_path_factory):
        runs = {}
        for workers in (1, 4):
            out = tmp_path_factory.mktemp(f"workers-{workers}")
            ecosystem = build_ecosystem(
                EcosystemConfig(population=SMALL_POPULATION, seed=BENCH_SEED)
            )
            dataset, stats = run_study_with_stats(
                ecosystem,
                _small_config(shards=4, workers=workers, stream_dir=str(out)),
            )
            runs[workers] = (out, dataset, stats)
        return runs

    def test_jsonl_output_byte_identical(self, sharded_runs):
        serial_dir, _, _ = sharded_runs[1]
        pooled_dir, _, _ = sharded_runs[4]
        assert _dataset_digest(serial_dir) == _dataset_digest(pooled_dir)

    def test_stats_identical_except_workers(self, sharded_runs):
        _, _, serial = sharded_runs[1]
        _, _, pooled = sharded_runs[4]
        assert serial.grabs == pooled.grabs
        assert serial.scans_by_experiment == pooled.scans_by_experiment
        assert serial.records_by_channel == pooled.records_by_channel
        assert serial.workers == 1 and pooled.workers == 4

    def test_every_experiment_produced_records(self, sharded_runs):
        _, dataset, stats = sharded_runs[1]
        assert dataset.ticket_daily and dataset.dhe_daily and dataset.ecdhe_daily
        assert dataset.ticket_support and dataset.dhe_support and dataset.ecdhe_support
        assert dataset.ticket_30min and dataset.dhe_30min and dataset.ecdhe_30min
        assert dataset.session_probes and dataset.ticket_probes
        assert dataset.crossdomain_targets
        assert stats.grabs > 0
        for name in default_registry(_small_config()).names():
            assert stats.scans_by_experiment.get(name, 0) > 0, name

    def test_shards_partition_population(self, sharded_runs):
        _, dataset, _ = sharded_runs[1]
        # Each domain's daily stream comes from exactly one shard, and
        # the union covers the whole non-blacklisted list each day.
        day0 = [o for o in dataset.ticket_daily if o.day == 0]
        domains = [o.domain for o in day0]
        assert len(domains) == len(set(domains))
        per_shard = {shard_of(d, 4) for d in domains}
        assert per_shard == {0, 1, 2, 3}

    def test_streamed_dataset_roundtrips_through_load(self, sharded_runs):
        from repro.scanner import load_dataset

        serial_dir, dataset, _ = sharded_runs[1]
        loaded = load_dataset(str(serial_dir))
        assert loaded.ticket_daily == dataset.ticket_daily
        assert loaded.session_probes == dataset.session_probes
        assert loaded.list_sizes == dataset.list_sizes
        assert loaded.as_names == dataset.as_names


def test_shard_of_is_stable_and_total():
    names = [f"domain-{i}.example" for i in range(200)]
    for shard_count in (1, 2, 4, 7):
        assignments = [shard_of(name, shard_count) for name in names]
        assert set(assignments) <= set(range(shard_count))
        assert assignments == [shard_of(name, shard_count) for name in names]
    assert all(shard_of(name, 1) == 0 for name in names)


def test_default_registry_covers_paper_schedule():
    config = _small_config()
    registry = default_registry(config)
    assert registry.names() == [
        "daily-ticket", "daily-dhe", "daily-ecdhe",
        "support-dhe", "support-ecdhe", "support-ticket",
        "crossdomain", "probe-session_id", "probe-ticket",
    ]
    # Daily campaigns run every day; scheduled experiments on their day.
    assert 0 in registry.get("daily-ticket").schedule(config)
    assert 1 in registry.get("daily-ticket").schedule(config)
    assert registry.get("support-dhe").schedule(config) == frozenset((1,))
    assert registry.get("probe-ticket").schedule(config) == frozenset((1,))


def test_registry_rejects_duplicate_names():
    registry = ExperimentRegistry()
    registry.register(default_registry(_small_config()).get("crossdomain"))
    with pytest.raises(ValueError, match="duplicate"):
        registry.register(default_registry(_small_config()).get("crossdomain"))


def test_disabled_experiments_have_empty_schedules():
    config = _small_config(
        run_probes=False, run_crossdomain=False, run_support_scans=False,
    )
    registry = default_registry(config)
    for name in ("support-dhe", "crossdomain", "probe-session_id"):
        schedule = registry.get(name).schedule(config)
        assert not any(day in schedule for day in range(config.days))


class _CountingExperiment(Experiment):
    """A plug-in experiment: counts its scheduled days, grabs one domain."""

    name = "counting"
    channels = ()

    def __init__(self):
        self.days_run = []
        self.finalized = False

    def schedule(self, config):
        return EVERY_DAY

    def run_day(self, ctx, day):
        self.days_run.append(day)
        if ctx.today_owned:
            rank, name = ctx.today_owned[0]
            ctx.grabber.grab(name, rank=rank)

    def finalize(self, ctx):
        self.finalized = True


def test_custom_experiment_plugs_into_engine():
    config = _small_config(
        days=3, run_probes=False, run_crossdomain=False, run_support_scans=False,
    )
    counting = _CountingExperiment()
    registry = ExperimentRegistry([counting])
    ecosystem = build_ecosystem(
        EcosystemConfig(population=SMALL_POPULATION, seed=9)
    )
    engine = StudyEngine(config, registry=registry)
    dataset, stats = engine.run(ecosystem)
    assert counting.days_run == [0, 1, 2]
    assert counting.finalized
    assert stats.scans_by_experiment == {"counting": 3}
    assert dataset.ticket_daily == []  # no paper experiments registered


def test_custom_registry_refuses_process_pool():
    config = _small_config(days=1, run_probes=False, run_crossdomain=False,
                           run_support_scans=False, shards=2, workers=2)
    engine = StudyEngine(config, registry=ExperimentRegistry([_CountingExperiment()]))
    ecosystem = build_ecosystem(
        EcosystemConfig(population=SMALL_POPULATION, seed=9)
    )
    with pytest.raises(ValueError, match="workers=1"):
        engine.run(ecosystem)


def test_serial_default_runs_on_callers_ecosystem(small_ecosystem_factory):
    """shards=1 scans the ecosystem object the caller passed (legacy path)."""
    ecosystem = small_ecosystem_factory()
    config = _small_config(days=1, run_probes=False, run_crossdomain=False,
                           run_support_scans=False)
    before = ecosystem.clock.now()
    dataset = run_study(ecosystem, config)
    assert ecosystem.clock.now() > before
    scanned = {o.domain for o in dataset.ticket_daily}
    expected = {
        name for _, name in ecosystem.alexa_list(0)
        if name not in ecosystem.blacklist
    }
    assert scanned <= expected | {name for _, name in ecosystem.alexa_list()}
    assert len(scanned) > 0
