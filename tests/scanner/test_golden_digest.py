"""Golden-digest regression pin for the reference study corpus.

The crypto/handshake layer is aggressively cached (key schedules,
signed-params encodings, certificate serializations, wNAF scalar
multiplication — see DESIGN.md on cache safety).  None of those
optimizations may change a single byte of study output: the digest of
the small reference study's saved dataset is pinned here, so any
change to RNG draw order, wire encodings, or record serialization
fails this test instead of silently altering results.

If this test fails, the change is output-affecting by definition.
Either it is a bug, or it is an intentional semantic change — in which
case re-pin the digest and say so prominently in the changelog.
"""

import hashlib
import os

from repro.scanner import save_dataset

GOLDEN_DIGEST = "58de44c10add5b4a81b9b2b8d7a02e25a1576c7cbe4d267596bdf9ca39cf22e7"


def _dataset_digest(directory) -> str:
    digest = hashlib.sha256()
    for name in sorted(os.listdir(directory)):
        digest.update(name.encode())
        with open(os.path.join(directory, name), "rb") as fh:
            digest.update(fh.read())
    return digest.hexdigest()


def test_small_study_dataset_digest_is_pinned(small_study, tmp_path):
    _, dataset = small_study
    out = tmp_path / "golden"
    save_dataset(dataset, str(out))
    assert _dataset_digest(out) == GOLDEN_DIGEST
