"""ZGrabber tests against a small ecosystem."""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.scanner import ZGrabber
from repro.tls.ciphers import DHE_ONLY_OFFER


@pytest.fixture(scope="module")
def grabber(request):
    factory = request.getfixturevalue("small_ecosystem_factory")
    ecosystem = factory()
    return ZGrabber(ecosystem, DeterministicRandom(500))


def first_domain(grabber, predicate):
    for domain in grabber.ecosystem.active_domains(0):
        if predicate(domain):
            return domain
    raise AssertionError("no matching domain")


def test_grab_success_fields(grabber):
    domain = first_domain(
        grabber,
        lambda d: d.https and d.behavior.trusted_cert and d.behavior.tickets
        and d.behavior.supports_ecdhe,
    )
    for _ in range(3):  # tolerate injected transient failures
        observation = grabber.grab(domain.name, rank=domain.rank)
        if observation.success:
            break
    assert observation.success
    assert observation.domain == domain.name
    assert observation.cipher is not None
    assert observation.kex_kind in ("rsa", "dhe", "ecdhe")
    assert observation.ip
    assert observation.ticket_issued
    assert observation.stek_id is not None
    assert observation.ticket_format is not None


def test_grab_nxdomain(grabber):
    observation = grabber.grab("no-such-name.invalid")
    assert not observation.success
    assert observation.error == "nxdomain"


def test_grab_dark_domain(grabber):
    domain = first_domain(grabber, lambda d: not d.https and d.ips)
    observation = grabber.grab(domain.name)
    assert not observation.success
    assert "connect" in observation.error


def test_grab_untrusted_cert_flagged(grabber):
    domain = first_domain(
        grabber, lambda d: d.https and not d.behavior.trusted_cert
    )
    for _ in range(4):
        observation = grabber.grab(domain.name)
        if observation.success:
            break
    assert observation.success
    assert not observation.cert_trusted
    assert observation.cert_error


def test_grab_stek_id_matches_ground_truth(grabber):
    domain = first_domain(
        grabber,
        lambda d: d.https and d.behavior.tickets and d.behavior.trusted_cert
        and not d.extra_stek_stores,
    )
    for _ in range(4):
        observation = grabber.grab(domain.name)
        if observation.success:
            break
    assert observation.stek_id == domain.stek_store.current.key_name.hex()


def test_grab_dhe_only_offer(grabber):
    domain = first_domain(
        grabber,
        lambda d: d.https and d.behavior.supports_dhe and d.behavior.trusted_cert,
    )
    for _ in range(4):
        observation = grabber.grab(domain.name, offer=DHE_ONLY_OFFER, offer_tickets=False)
        if observation.success:
            break
    assert observation.success
    assert observation.kex_kind == "dhe"
    assert observation.kex_public
    assert not observation.ticket_issued


def test_grab_dhe_only_against_non_dhe_server(grabber):
    domain = first_domain(
        grabber,
        lambda d: d.https and not d.behavior.supports_dhe and d.behavior.trusted_cert,
    )
    observations = [
        grabber.grab(domain.name, offer=DHE_ONLY_OFFER) for _ in range(3)
    ]
    assert all(not o.success for o in observations)


def test_grab_counts(grabber):
    before = grabber.grabs
    grabber.grab("no-such-name.invalid")
    assert grabber.grabs == before + 1


def test_day_and_timestamp_recorded(grabber):
    ecosystem = grabber.ecosystem
    domain = first_domain(grabber, lambda d: d.https)
    observation = grabber.grab(domain.name)
    assert observation.day == ecosystem.clock.day_index
    assert observation.timestamp == ecosystem.clock.now()
