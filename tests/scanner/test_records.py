"""Scan record schema and JSONL serialization tests."""

from repro.scanner.records import (
    CrossDomainEdge,
    ResumptionProbeResult,
    ScanObservation,
    read_jsonl,
    write_jsonl,
)


def test_observation_json_roundtrip():
    observation = ScanObservation(
        domain="example.com",
        day=5,
        timestamp=12345.0,
        rank=42,
        ip="10.0.0.1",
        success=True,
        cipher="TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA",
        kex_kind="ecdhe",
        forward_secret=True,
        cert_trusted=True,
        session_id_set=True,
        ticket_issued=True,
        ticket_hint=300,
        ticket_format="rfc5077",
        stek_id="ab" * 16,
        kex_public="04" + "00" * 32,
    )
    assert ScanObservation.from_json(observation.to_json()) == observation


def test_failed_observation_roundtrip():
    observation = ScanObservation(
        domain="down.example", day=0, timestamp=1.0, error="connect: timeout"
    )
    parsed = ScanObservation.from_json(observation.to_json())
    assert not parsed.success
    assert parsed.error == "connect: timeout"
    assert parsed.stek_id is None


def test_probe_result_roundtrip():
    probe = ResumptionProbeResult(
        domain="example.com",
        rank=9,
        mechanism="ticket",
        handshake_ok=True,
        issued=True,
        resumed_at_1s=True,
        max_success_delay=3600.0,
        ticket_hint=7200,
        attempts=13,
    )
    assert ResumptionProbeResult.from_json(probe.to_json()) == probe


def test_edge_roundtrip():
    edge = CrossDomainEdge(origin="a.com", acceptor="b.com", via_same_ip=True)
    assert CrossDomainEdge.from_json(edge.to_json()) == edge


def test_jsonl_file_roundtrip(tmp_path):
    path = tmp_path / "scan.jsonl"
    records = [
        ScanObservation(domain=f"d{i}.example", day=i, timestamp=float(i))
        for i in range(25)
    ]
    count = write_jsonl(path, records)
    assert count == 25
    loaded = list(read_jsonl(path, ScanObservation))
    assert loaded == records


def test_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "scan.jsonl"
    record = ScanObservation(domain="x.example", day=0, timestamp=0.0)
    path.write_text(record.to_json() + "\n\n\n" + record.to_json() + "\n")
    assert len(list(read_jsonl(path, ScanObservation))) == 2


def test_json_is_one_line():
    record = ScanObservation(domain="x.example", day=0, timestamp=0.0)
    assert "\n" not in record.to_json()
