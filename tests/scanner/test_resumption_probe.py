"""24-hour resumption-probe tests against ground truth."""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.netsim.clock import HOUR, MINUTE
from repro.scanner import ProbeConfig, ZGrabber, resumption_probe


@pytest.fixture()
def ecosystem(small_ecosystem_factory):
    return small_ecosystem_factory(population=380, seed=33, failure_rate=0.0)


@pytest.fixture()
def grabber(ecosystem):
    return ZGrabber(ecosystem, DeterministicRandom(808))


def pick(ecosystem, predicate, count=1):
    picked = [
        (d.rank, d.name)
        for d in ecosystem.active_domains(0)
        if predicate(d.behavior) and d.https
    ]
    assert len(picked) >= count
    return picked[:count]


def test_session_probe_matches_cache_lifetime(ecosystem, grabber):
    targets = pick(
        ecosystem,
        lambda b: b.trusted_cert and b.session_cache_lifetime == 5 * MINUTE,
        count=3,
    )
    results = resumption_probe(grabber, targets, ProbeConfig(mechanism="session_id"))
    for result in results:
        assert result.handshake_ok and result.issued
        assert result.resumed_at_1s
        # Honored for ~5 min: last success at the 1 s attempt or the
        # 5-minute attempt, never at 10+ minutes.
        assert result.max_success_delay is not None
        assert result.max_success_delay < 9 * MINUTE


def test_session_probe_long_cache(ecosystem, grabber):
    targets = pick(
        ecosystem,
        lambda b: b.trusted_cert and (b.session_cache_lifetime or 0) >= 10 * HOUR,
        count=1,
    )
    results = resumption_probe(grabber, targets, ProbeConfig(mechanism="session_id"))
    assert results[0].max_success_delay is not None
    assert results[0].max_success_delay >= 9 * HOUR


def test_session_probe_nginx_style_never_resumes(ecosystem, grabber):
    targets = pick(
        ecosystem,
        lambda b: b.trusted_cert and b.issue_session_ids
        and b.session_cache_lifetime is None,
        count=2,
    )
    results = resumption_probe(grabber, targets, ProbeConfig(mechanism="session_id"))
    for result in results:
        assert result.issued               # ID was set...
        assert not result.resumed_at_1s    # ...but never honored
        assert result.max_success_delay is None


def test_ticket_probe_matches_window(ecosystem, grabber):
    targets = pick(
        ecosystem,
        lambda b: b.trusted_cert and b.tickets and b.ticket_window_seconds == 5 * MINUTE
        and b.stek_rotation_seconds and b.stek_rotation_seconds > HOUR,
        count=3,
    )
    results = resumption_probe(grabber, targets, ProbeConfig(mechanism="ticket"))
    for result in results:
        assert result.issued
        assert result.resumed_at_1s
        assert result.max_success_delay < 9 * MINUTE


def test_ticket_probe_records_hint(ecosystem, grabber):
    targets = pick(
        ecosystem,
        lambda b: b.trusted_cert and b.tickets and b.ticket_hint_seconds > 0,
        count=2,
    )
    results = resumption_probe(grabber, targets, ProbeConfig(mechanism="ticket"))
    for result in results:
        assert result.ticket_hint is not None and result.ticket_hint > 0


def test_ticket_probe_no_ticket_domain(ecosystem, grabber):
    targets = pick(
        ecosystem, lambda b: b.trusted_cert and not b.tickets, count=2
    )
    results = resumption_probe(grabber, targets, ProbeConfig(mechanism="ticket"))
    for result in results:
        assert result.handshake_ok
        assert not result.issued
        assert result.attempts == 0


def test_probe_dark_domain(ecosystem, grabber):
    dark = [(d.rank, d.name) for d in ecosystem.active_domains(0) if not d.https][:2]
    results = resumption_probe(grabber, dark, ProbeConfig(mechanism="session_id"))
    for result in results:
        assert not result.handshake_ok


def test_probe_ceiling_flag(ecosystem, grabber):
    """Domains honoring past 24 h are right-censored, like the paper."""
    targets = pick(
        ecosystem,
        lambda b: b.trusted_cert and (b.session_cache_lifetime or 0) > 26 * HOUR,
        count=1,
    )
    config = ProbeConfig(mechanism="session_id", max_duration_seconds=2 * HOUR,
                         interval_seconds=30 * MINUTE)
    results = resumption_probe(grabber, targets, config)
    assert results[0].hit_probe_ceiling


def test_probe_mechanism_validation(grabber):
    with pytest.raises(ValueError):
        resumption_probe(grabber, [], ProbeConfig(mechanism="bogus"))


def test_probe_runs_interleaved_on_one_timeline(ecosystem, grabber):
    """Probing N domains costs one probe window, not N windows."""
    targets = pick(
        ecosystem, lambda b: b.trusted_cert and b.resumes_session_ids, count=5
    )
    start = ecosystem.clock.now()
    config = ProbeConfig(mechanism="session_id", max_duration_seconds=1 * HOUR)
    resumption_probe(grabber, targets, config)
    elapsed = ecosystem.clock.now() - start
    assert elapsed < 2 * HOUR
