"""Event-driven scan core vs the blocking oracle: record identity.

The event-driven fast path (``fastpath`` + ``EventLoop`` pumping) is
only admissible because it changes NOTHING about study output — not
under chaos, not at any concurrency, not at any worker count.  This
suite runs the same chaos-laden study through every execution shape and
pins byte-for-byte dataset equality plus merged-metric equality:

* ``oracle=True`` (blocking reference path) vs the default event path;
* ``concurrency`` 1, 64, and 4096 (admission batch size must be
  invisible);
* ``workers`` 1, 2, and 4 (process pool must be invisible — the event
  loop runs per shard, inside each worker).

Chaos + retry + breaker are enabled throughout so the equivalence
covers the paths where the event core delegates back to the oracle
(fault-impaired connections) and where retry backoff advances virtual
time from inside a pumped task.
"""

import hashlib
import json
import os

import pytest

from repro.faults.plan import PROFILE_SCHEMA
from repro.faults.retry import RetryPolicy
from repro.hosting import EcosystemConfig, build_ecosystem
from repro.scanner import StudyConfig, run_study_with_stats

POPULATION = 320
ECOSYSTEM_SEED = 2016

#: Full-span windows so faults (and therefore retries, breaker trips,
#: and oracle delegation for impaired servers) fire during the study.
CHAOS_PROFILE = {
    "schema": PROFILE_SCHEMA,
    "seed": 7,
    "windows": [
        {"kind": "outage", "start_day": 0, "end_day": 2, "rate": 0.3},
        {"kind": "reset", "start_day": 0, "end_day": 2, "rate": 0.1,
         "period_seconds": 600.0},
        {"kind": "nxdomain", "start_day": 0, "end_day": 2, "rate": 0.05},
        {"kind": "latency", "start_day": 0, "end_day": 2, "rate": 0.05,
         "delay_seconds": 15.0, "period_seconds": 300.0},
    ],
}


def _config(**overrides) -> StudyConfig:
    fields = dict(
        days=2,
        seed=404,
        probe_domain_count=40,
        dhe_support_day=1,
        ecdhe_support_day=1,
        ticket_support_day=1,
        crossdomain_day=1,
        session_probe_day=1,
        ticket_probe_day=1,
        shards=2,
        chaos=CHAOS_PROFILE,
        retry=RetryPolicy(max_attempts=2, breaker_threshold=4),
    )
    fields.update(overrides)
    return StudyConfig(**fields)


def _dataset_digest(directory) -> str:
    digest = hashlib.sha256()
    for name in sorted(os.listdir(directory)):
        digest.update(name.encode())
        with open(os.path.join(directory, name), "rb") as fh:
            digest.update(fh.read())
    return digest.hexdigest()


#: label -> (StudyConfig overrides, run_study kwargs)
SHAPES = {
    "event": ({}, {}),
    "oracle": ({"oracle": True}, {}),
    "conc1": ({"concurrency": 1}, {}),
    "conc64": ({"concurrency": 64}, {}),
    "conc4096": ({"concurrency": 4096}, {}),
    "workers2": ({}, {"workers": 2}),
    "workers4": ({}, {"workers": 4}),
}


class TestScaleEquivalence:
    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        out = {}
        for label, (overrides, kwargs) in SHAPES.items():
            stream = tmp_path_factory.mktemp(f"scale-{label}")
            telemetry = tmp_path_factory.mktemp(f"scale-{label}-telemetry")
            ecosystem = build_ecosystem(
                EcosystemConfig(population=POPULATION, seed=ECOSYSTEM_SEED)
            )
            dataset, stats = run_study_with_stats(
                ecosystem, _config(**overrides),
                stream_dir=str(stream), telemetry_dir=str(telemetry),
                **kwargs,
            )
            out[label] = {
                "digest": _dataset_digest(stream),
                "telemetry": str(telemetry),
                "dataset": dataset,
                "stats": stats,
            }
        return out

    def test_event_path_is_record_identical_to_oracle(self, runs):
        assert runs["event"]["digest"] == runs["oracle"]["digest"]

    @pytest.mark.parametrize("label", ["conc1", "conc64", "conc4096"])
    def test_concurrency_does_not_change_output(self, runs, label):
        assert runs[label]["digest"] == runs["event"]["digest"]

    @pytest.mark.parametrize("label", ["workers2", "workers4"])
    def test_workers_do_not_change_output(self, runs, label):
        assert runs[label]["digest"] == runs["event"]["digest"]

    #: Counters that measure *work*, not output: the fast path skips
    #: shared-secret derivation and key-exchange params serialization
    #: (nothing observable depends on them), so these caches are never
    #: consulted on the event path.  Everything else must agree exactly.
    UNOBSERVABLE_CACHES = ("crypto.ec.shared_memo.", "tls.kex.params_cache.")

    def test_merged_metrics_match_oracle(self, runs):
        # Every observable counter — grabs, failures by reason, retries,
        # injected faults, breaker transitions, ticket seals, cert
        # validations — must agree between the event core and the
        # blocking oracle, not just the dataset bytes.
        counters = {}
        for label in ("event", "oracle"):
            path = os.path.join(runs[label]["telemetry"], "metrics.json")
            with open(path) as fh:
                counters[label] = {
                    key: value
                    for key, value in json.load(fh)["counters"].items()
                    if not key.startswith(self.UNOBSERVABLE_CACHES)
                }
        assert counters["event"] == counters["oracle"]

    def test_chaos_retry_and_breaker_engaged_in_event_path(self, runs):
        """The equivalence is not vacuous: faults fired, retries burned

        extra grabs, and virtual-time backoff ran inside the event loop
        (latency faults + backoff advance the clock mid-sweep).
        """
        path = os.path.join(runs["event"]["telemetry"], "metrics.json")
        with open(path) as fh:
            counters = json.load(fh)["counters"]
        assert any(key.startswith("faults.injected") for key in counters)
        stats = runs["event"]["stats"]
        dataset = runs["event"]["dataset"]
        recorded = sum(
            len(getattr(dataset, name))
            for name in ("ticket_daily", "dhe_daily", "ecdhe_daily")
        )
        assert stats.grabs > recorded, "retry policy never retried"
        failed = [o for o in dataset.ticket_daily if not o.success]
        assert failed, "chaos profile injected no failures"
