"""Sweep and daily-campaign scheduling tests."""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.netsim.clock import DAY, HOUR
from repro.scanner import DailyScanCampaign, SweepConfig, ZGrabber, sweep, thirty_minute_scan


@pytest.fixture()
def ecosystem(small_ecosystem_factory):
    return small_ecosystem_factory(population=380, seed=21)


@pytest.fixture()
def grabber(ecosystem):
    return ZGrabber(ecosystem, DeterministicRandom(777))


def test_sweep_scans_every_domain_once(grabber):
    domains = grabber.ecosystem.alexa_list()[:50]
    observations = sweep(grabber, domains, SweepConfig(window_seconds=HOUR))
    assert len(observations) == 50
    assert {o.domain for o in observations} == {name for _, name in domains}


def test_sweep_spreads_over_window(grabber):
    domains = grabber.ecosystem.alexa_list()[:40]
    start = grabber.ecosystem.clock.now()
    observations = sweep(grabber, domains, SweepConfig(window_seconds=2 * HOUR))
    elapsed = observations[-1].timestamp - start
    assert 1.5 * HOUR < elapsed <= 2 * HOUR


def test_sweep_multi_connection(grabber):
    domains = grabber.ecosystem.alexa_list()[:20]
    observations = sweep(
        grabber, domains, SweepConfig(connections_per_domain=3, window_seconds=HOUR)
    )
    assert len(observations) == 60
    per_domain = {}
    for o in observations:
        per_domain.setdefault(o.domain, 0)
        per_domain[o.domain] += 1
    assert all(count == 3 for count in per_domain.values())


def test_sweep_empty_list(grabber):
    assert sweep(grabber, [], SweepConfig()) == []


def test_sweep_records_ranks(grabber):
    domains = grabber.ecosystem.alexa_list()[:10]
    observations = sweep(grabber, domains, SweepConfig(window_seconds=60))
    for (rank, name), observation in zip(domains, observations):
        assert observation.rank == rank
        assert observation.domain == name


def test_daily_campaign_accumulates(grabber):
    campaign = DailyScanCampaign(grabber, window_seconds=HOUR)
    ecosystem = grabber.ecosystem
    for day in range(3):
        ecosystem.advance_to(day * DAY)
        campaign.run_day(ecosystem.alexa_list()[:30])
    assert len(campaign.observations) == 90
    days = {o.day for o in campaign.observations}
    assert days == {0, 1, 2}


def test_thirty_minute_scan_duration(grabber):
    ecosystem = grabber.ecosystem
    start = ecosystem.clock.now()
    observations = thirty_minute_scan(grabber, ecosystem.alexa_list()[:25])
    assert len(observations) == 25
    assert ecosystem.clock.now() - start <= 30 * 60 + 1
