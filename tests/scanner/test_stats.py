"""StudyStats: merge semantics and derived-rate properties."""

import pytest

from repro.scanner.engine import StudyStats


def _stats(grabs=0, experiments=None, channels=None) -> StudyStats:
    stats = StudyStats(days=2, shards=2, workers=1, grabs=grabs)
    stats.scans_by_experiment = dict(experiments or {})
    stats.records_by_channel = dict(channels or {})
    return stats


class TestMerge:
    def test_merge_adds_grabs_experiments_and_channels(self):
        left = _stats(10, {"daily": 6}, {"ticket_daily": 4})
        right = _stats(5, {"daily": 2, "probe": 3}, {"cache_edges": 1})
        left.merge(right)
        assert left.grabs == 15
        assert left.scans_by_experiment == {"daily": 8, "probe": 3}
        assert left.records_by_channel == {"ticket_daily": 4, "cache_edges": 1}

    def test_merge_is_associative(self):
        def fresh():
            return (
                _stats(1, {"a": 1}),
                _stats(2, {"a": 2, "b": 1}),
                _stats(4, {"b": 5}),
            )

        s1, s2, s3 = fresh()
        s1.merge(s2)
        s1.merge(s3)
        left = (s1.grabs, s1.scans_by_experiment)

        t1, t2, t3 = fresh()
        t2.merge(t3)
        t1.merge(t2)
        right = (t1.grabs, t1.scans_by_experiment)
        assert left == right

    def test_merge_with_empty_is_identity(self):
        stats = _stats(7, {"daily": 7}, {"ticket_daily": 3})
        stats.merge(_stats())
        assert stats.grabs == 7
        assert stats.scans_by_experiment == {"daily": 7}
        assert stats.records_by_channel == {"ticket_daily": 3}

    def test_merge_does_not_touch_elapsed(self):
        # Per-shard elapsed times overlap under workers > 1; the engine
        # stamps wall-clock after the merge instead.
        left, right = _stats(1), _stats(1)
        right.elapsed_seconds = 99.0
        left.merge(right)
        assert left.elapsed_seconds == 0.0


class TestDerived:
    def test_grabs_per_sec(self):
        stats = _stats(100)
        stats.elapsed_seconds = 4.0
        assert stats.grabs_per_sec == pytest.approx(25.0)

    def test_grabs_per_sec_zero_elapsed_is_zero_not_error(self):
        assert _stats(100).grabs_per_sec == 0.0

    def test_render_includes_rate_only_when_timed(self):
        stats = _stats(100, {"daily": 100})
        assert "grabs/s" not in stats.render()
        stats.elapsed_seconds = 2.0
        rendered = stats.render()
        assert "50.0 grabs/s" in rendered
        assert "daily" in rendered
