"""Full-study orchestration and dataset persistence tests.

These use the shared session-scoped study dataset to stay fast.
"""

import dataclasses

import pytest

from repro.scanner import StudyConfig, StudyDataset, load_dataset, save_dataset

from conftest import SMALL_DAYS, SMALL_POPULATION


def test_daily_sweeps_cover_all_days(small_study):
    _, dataset = small_study
    for observations in (dataset.ticket_daily, dataset.dhe_daily, dataset.ecdhe_daily):
        assert {o.day for o in observations} == set(range(SMALL_DAYS))


def test_daily_sweep_sizes(small_study):
    _, dataset = small_study
    per_day = len(dataset.ticket_daily) / SMALL_DAYS
    # Population minus blacklist, plus/minus churn.
    assert SMALL_POPULATION * 0.95 < per_day <= SMALL_POPULATION


def test_blacklisted_domains_never_scanned(small_study):
    ecosystem, dataset = small_study
    scanned = {o.domain for o in dataset.ticket_daily}
    assert ecosystem.blacklist
    assert not (scanned & ecosystem.blacklist)


def test_support_scans_ran(small_study):
    _, dataset = small_study
    assert dataset.ticket_support and dataset.dhe_support and dataset.ecdhe_support
    assert dataset.ticket_30min and dataset.dhe_30min and dataset.ecdhe_30min
    assert dataset.list_sizes["ticket"][0] >= dataset.list_sizes["ticket"][1]


def test_support_scan_ten_connections(small_study):
    _, dataset = small_study
    per_domain = {}
    for o in dataset.ticket_support:
        per_domain[o.domain] = per_domain.get(o.domain, 0) + 1
    assert max(per_domain.values()) == 10
    assert min(per_domain.values()) == 10


def test_probes_ran(small_study):
    _, dataset = small_study
    assert dataset.session_probes and dataset.ticket_probes
    assert any(p.resumed_at_1s for p in dataset.session_probes)
    assert any(p.resumed_at_1s for p in dataset.ticket_probes)


def test_crossdomain_ran(small_study):
    _, dataset = small_study
    assert dataset.crossdomain_targets
    assert dataset.cache_edges  # providers guarantee shared caches


def test_always_present_subset_of_day0(small_study):
    _, dataset = small_study
    day0 = {name for _, name in dataset.day0_list}
    assert set(dataset.always_present) <= day0
    assert len(dataset.always_present) < len(day0)  # churn happened


def test_as_knowledge_collected(small_study):
    _, dataset = small_study
    assert dataset.domain_asn
    assert dataset.as_names
    assert all(asn in dataset.as_names for asn in set(dataset.domain_asn.values()))


def test_ranks_recorded(small_study):
    _, dataset = small_study
    assert dataset.ranks
    scanned = {o.domain for o in dataset.ticket_daily if o.success}
    assert scanned <= set(dataset.ranks)


def test_success_rate_reasonable(small_study):
    _, dataset = small_study
    ok = sum(1 for o in dataset.ticket_daily if o.success)
    rate = ok / len(dataset.ticket_daily)
    # Small populations are provider-heavy (all HTTPS), so the rate
    # lands well above the independent-domain 70% HTTPS share.
    assert 0.55 < rate < 0.97


def test_dataset_roundtrip_via_jsonl(small_study, tmp_path):
    _, dataset = small_study
    directory = tmp_path / "dataset"
    save_dataset(dataset, str(directory))
    loaded = load_dataset(str(directory))
    assert loaded.days == dataset.days
    assert loaded.always_present == dataset.always_present
    assert loaded.ranks == dataset.ranks
    assert loaded.ticket_daily == dataset.ticket_daily
    assert loaded.dhe_support == dataset.dhe_support
    assert loaded.session_probes == dataset.session_probes
    assert loaded.cache_edges == dataset.cache_edges
    assert loaded.as_names == dataset.as_names
    assert loaded.list_sizes == dataset.list_sizes


def test_empty_dataset_roundtrip(tmp_path):
    dataset = StudyDataset(days=0)
    directory = tmp_path / "empty"
    save_dataset(dataset, str(directory))
    loaded = load_dataset(str(directory))
    assert loaded.days == 0
    assert loaded.ticket_daily == []


def test_dataset_roundtrip_every_field(small_study, tmp_path):
    """save → load restores *every* dataset field, types included."""
    _, dataset = small_study
    directory = tmp_path / "full"
    save_dataset(dataset, str(directory))
    loaded = load_dataset(str(directory))
    for f in dataclasses.fields(StudyDataset):
        original = getattr(dataset, f.name)
        restored = getattr(loaded, f.name)
        if f.name == "day0_list":
            assert restored == [tuple(pair) for pair in original], f.name
        else:
            assert restored == original, f.name
    # JSON round-trip hazards, explicitly: tuples and int keys.
    assert all(isinstance(pair, tuple) for pair in loaded.day0_list)
    assert loaded.list_sizes and all(
        isinstance(v, tuple) for v in loaded.list_sizes.values()
    )
    assert loaded.as_names and all(
        isinstance(k, int) for k in loaded.as_names
    )


def test_saving_loaded_dataset_is_idempotent(small_study, tmp_path):
    """Re-saving a lazy (loaded) dataset to its own directory is a no-op
    for channel files and doesn't truncate what the views read."""
    _, dataset = small_study
    directory = tmp_path / "ds"
    save_dataset(dataset, str(directory))
    loaded = load_dataset(str(directory))
    count = len(loaded.ticket_daily)
    assert count > 0
    save_dataset(loaded, str(directory))
    again = load_dataset(str(directory))
    assert len(again.ticket_daily) == count
    assert again.ticket_daily == dataset.ticket_daily


class TestStudyConfigValidation:
    def test_default_schedule_is_valid(self):
        StudyConfig()  # paper schedule inside 63 days

    def test_rejects_out_of_range_experiment_day(self):
        with pytest.raises(ValueError, match="ticket_probe_day=58"):
            StudyConfig(days=45)  # probes at 56/58 fall outside range(45)

    def test_error_names_every_offending_field(self):
        with pytest.raises(ValueError) as excinfo:
            StudyConfig(days=10)
        message = str(excinfo.value)
        for name in ("dhe_support_day", "ecdhe_support_day",
                     "ticket_support_day", "crossdomain_day",
                     "session_probe_day", "ticket_probe_day"):
            assert name in message

    def test_rejects_negative_day(self):
        with pytest.raises(ValueError, match="crossdomain_day=-1"):
            StudyConfig(crossdomain_day=-1)

    def test_disabled_experiments_not_validated(self):
        config = StudyConfig(
            days=5,
            run_support_scans=False, run_crossdomain=False, run_probes=False,
        )
        assert config.days == 5  # paper-day defaults ignored when disabled

    def test_day_equal_to_days_rejected(self):
        """day == days means the experiment would silently never run —
        the exact latent bug the CLI had with short --days values."""
        with pytest.raises(ValueError, match="session_probe_day=6"):
            StudyConfig(
                days=6,
                dhe_support_day=1, ecdhe_support_day=2, ticket_support_day=3,
                crossdomain_day=4, session_probe_day=6, ticket_probe_day=5,
            )

    def test_rejects_bad_execution_knobs(self):
        with pytest.raises(ValueError, match="days"):
            StudyConfig(days=0)
        with pytest.raises(ValueError, match="shards"):
            StudyConfig(shards=0)
        with pytest.raises(ValueError, match="workers"):
            StudyConfig(workers=-1)
