"""CLI tests: each subcommand end to end on tiny inputs."""

import pytest

from repro.cli import main

ECO_ARGS = ["--population", "420", "--seed", "3"]


def test_scan_known_domain(capsys):
    assert main(["scan", "yahoo.com"] + ECO_ARGS) == 0
    out = capsys.readouterr().out
    assert "success:         True" in out
    assert "STEK id:" in out
    assert "forward secret:  True" in out


def test_scan_unknown_domain(capsys):
    assert main(["scan", "no-such-host.invalid"] + ECO_ARGS) == 1
    out = capsys.readouterr().out
    assert "nxdomain" in out


@pytest.fixture(scope="module")
def study_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli-study")
    code = main([
        "study", "--days", "6", "--out", str(directory),
        "--population", "420", "--seed", "3",
    ])
    assert code == 0
    return directory


def test_study_writes_dataset(study_dir, capsys):
    assert (study_dir / "meta.json").exists()
    assert (study_dir / "ticket_daily.jsonl").exists()


def test_report_renders_tables(study_dir, capsys):
    assert main(["report", str(study_dir), "--min-days", "2"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "prolonged STEK reuse" in out
    assert "Largest STEK service groups" in out
    assert "cloudflare" in out
    assert "yahoo.com" in out


def test_audit_renders_windows(study_dir, capsys):
    assert main(["audit", str(study_dir), "--worst", "5"]) == 0
    out = capsys.readouterr().out
    assert "window > 24 hours" in out
    assert "rotate STEKs daily" in out
    assert "mechanism" in out


def test_report_streaming_flags_do_not_change_bytes(study_dir, capsys):
    assert main(["report", str(study_dir), "--min-days", "2",
                 "--legacy"]) == 0
    legacy = capsys.readouterr().out
    assert main(["report", str(study_dir), "--min-days", "2"]) == 0
    streamed = capsys.readouterr().out
    assert main(["report", str(study_dir), "--min-days", "2",
                 "--workers", "2", "--no-cache"]) == 0
    parallel = capsys.readouterr().out
    assert legacy == streamed == parallel


def test_audit_streaming_flags_do_not_change_bytes(study_dir, capsys):
    assert main(["audit", str(study_dir), "--worst", "5", "--legacy"]) == 0
    legacy = capsys.readouterr().out
    assert main(["audit", str(study_dir), "--worst", "5"]) == 0
    streamed = capsys.readouterr().out
    assert legacy == streamed


def test_streamed_report_leaves_partial_cache(study_dir):
    from repro.analysis import CACHE_DIR_NAME

    assert main(["report", str(study_dir), "--min-days", "2"]) == 0
    assert (study_dir / CACHE_DIR_NAME).is_dir()


def test_doc_table_prints_reference_and_exits(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--doc-table"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "| Command | Option | Default | Description |" in out
    # Every subcommand appears, including the streaming analysis flags.
    for command in ("scan", "study", "report", "audit", "target", "stats"):
        assert f"`{command}`" in out
    assert "`--workers WORKERS`" in out
    assert "`--legacy`" in out


def test_target_analysis(capsys):
    code = main(["target", "google.com", "--horizon-hours", "36",
                 "--population", "420", "--seed", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Nation-state target analysis: google.com" in out
    assert "retrospectively decrypted" in out


def test_missing_subcommand_errors():
    with pytest.raises(SystemExit):
        main([])


# --- telemetry: study --telemetry-dir and the stats subcommand ----------


@pytest.fixture(scope="module")
def telemetry_run(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli-telemetry")
    out, telemetry = root / "data", root / "telemetry"
    code = main([
        "study", "--days", "2", "--out", str(out),
        "--telemetry-dir", str(telemetry), "-q",
        "--population", "420", "--seed", "3",
    ])
    assert code == 0
    return out, telemetry


def test_study_quiet_suppresses_progress(telemetry_run, capsys):
    # The fixture ran with -q: no \r progress and no telemetry notice
    # may have reached stderr (results still go to stdout).
    assert "scanning day" not in capsys.readouterr().err


def test_study_writes_telemetry_next_to_dataset(telemetry_run):
    out, telemetry = telemetry_run
    assert (telemetry / "manifest.json").exists()
    assert (telemetry / "metrics.json").exists()
    assert (telemetry / "metrics.prom").exists()
    assert (telemetry / "trace.jsonl").exists()
    # ... and nothing leaked into the dataset directory.
    assert not (out / "manifest.json").exists()


def test_stats_renders_report(telemetry_run, capsys):
    _, telemetry = telemetry_run
    assert main(["stats", str(telemetry)]) == 0
    out = capsys.readouterr().out
    assert "run manifest: study" in out
    assert "per-experiment grabs:" in out
    assert "cache effectiveness:" in out
    # The scan hot path's crypto cache: the per-STEK key-schedule cache
    # (the process-wide aes_for_key LRU no longer sees study traffic).
    assert "crypto.aes.stek_cipher" in out


def test_stats_prometheus_exposition(telemetry_run, capsys):
    _, telemetry = telemetry_run
    assert main(["stats", str(telemetry), "--prometheus"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE repro_scanner_grab_attempt_total counter" in out
    assert "repro_tls_server_handshake_total" in out


def test_stats_rejects_missing_directory(tmp_path, capsys):
    assert main(["stats", str(tmp_path / "nope")]) == 1
    assert "cannot load manifest" in capsys.readouterr().err


def test_study_rejects_telemetry_dir_equal_to_out(tmp_path, capsys):
    out = tmp_path / "data"
    code = main([
        "study", "--days", "2", "--out", str(out),
        "--telemetry-dir", str(out),
        "--population", "420", "--seed", "3",
    ])
    assert code == 2
    assert "must not be the dataset" in capsys.readouterr().err


# --- chaos, retries, and resume -----------------------------------------


@pytest.fixture(scope="module")
def chaos_run(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli-chaos")
    out, telemetry = root / "data", root / "telemetry"
    code = main([
        "study", "--days", "2", "--out", str(out),
        "--stream-dir", str(out), "--shards", "2",
        "--chaos", "7", "--retries", "2", "--breaker-threshold", "4",
        "--telemetry-dir", str(telemetry), "-q",
    ] + ECO_ARGS)
    assert code == 0
    return out, telemetry


def test_chaos_study_writes_dataset_without_checkpoint_residue(chaos_run):
    out, _ = chaos_run
    assert (out / "meta.json").exists()
    assert not (out / "checkpoint").exists()


def test_stats_show_failure_and_retry_sections(chaos_run, capsys):
    _, telemetry = chaos_run
    assert main(["stats", str(telemetry)]) == 0
    report = capsys.readouterr().out
    assert "failure breakdown:" in report
    assert "retry/backoff:" in report
    assert "mean attempts per grab" in report


def test_prometheus_exposes_failure_reasons(chaos_run, capsys):
    _, telemetry = chaos_run
    assert main(["stats", str(telemetry), "--prometheus"]) == 0
    exposition = capsys.readouterr().out
    assert "repro_scanner_grab_failure_total{reason=" in exposition
    assert "repro_scanner_grab_attempts_per_grab" in exposition


def test_bad_chaos_profile_exits_2(tmp_path, capsys):
    profile = tmp_path / "bad.json"
    profile.write_text('{"schema": "repro-chaos/999"}')
    code = main([
        "study", "--days", "2", "--out", str(tmp_path / "o"),
        "--chaos-profile", str(profile),
    ] + ECO_ARGS)
    assert code == 2
    assert "bad chaos profile" in capsys.readouterr().err


def test_bad_retry_policy_exits_2(tmp_path, capsys):
    code = main([
        "study", "--days", "2", "--out", str(tmp_path / "o"),
        "--retries", "2", "--retry-budget", "-1",
    ] + ECO_ARGS)
    assert code == 2
    assert "bad retry policy" in capsys.readouterr().err


def test_resume_without_checkpoint_exits_2(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    code = main([
        "study", "--days", "2", "--out", str(tmp_path / "o"),
        "--resume", str(empty),
    ] + ECO_ARGS)
    assert code == 2
    assert "cannot resume" in capsys.readouterr().err


def test_resume_refuses_conflicting_flags(tmp_path, capsys):
    out = str(tmp_path / "o")
    assert main(["study", "--out", out, "--resume", str(tmp_path),
                 "--chaos", "3"] + ECO_ARGS) == 2
    assert "drop --chaos" in capsys.readouterr().err
    assert main(["study", "--out", out, "--resume", str(tmp_path),
                 "--stream-dir", str(tmp_path / "elsewhere")] + ECO_ARGS) == 2
    assert "would split the run" in capsys.readouterr().err


def test_resume_continues_a_partial_run(tmp_path, capsys):
    """Seed a one-of-two-shards checkpoint, then finish it via --resume."""
    import os

    from repro.hosting import EcosystemConfig, build_ecosystem
    from repro.scanner import CheckpointStore, StudyConfig
    from repro.scanner.checkpoint import checkpoint_fingerprint
    from repro.scanner.engine import run_shard

    stream = str(tmp_path / "stream")
    config = StudyConfig(
        days=2, probe_domain_count=40, dhe_support_day=1,
        ecdhe_support_day=1, ticket_support_day=1, crossdomain_day=1,
        session_probe_day=1, ticket_probe_day=1, shards=2,
    )
    ecosystem_config = EcosystemConfig(population=420, seed=3)
    store = CheckpointStore(stream)
    store.reset(checkpoint_fingerprint(config, ecosystem_config, 2))
    store.save_shard(run_shard(
        build_ecosystem(ecosystem_config), config, shard_id=0, shard_count=2,
        stream_dir=os.path.join(stream, "shards", "00"),
    ))

    out = str(tmp_path / "final")
    assert main(["study", "--resume", stream, "--out", out, "-q"]) == 0
    assert "dataset saved" in capsys.readouterr().out
    assert os.path.exists(os.path.join(out, "meta.json"))
    assert not os.path.exists(os.path.join(stream, "checkpoint"))


# -- PR-8: live observability plane ------------------------------------


@pytest.fixture(scope="module")
def observed_run(tmp_path_factory):
    """One tiny study with the full plane on: events + metrics + profile."""
    base = tmp_path_factory.mktemp("cli-obs")
    out = base / "dataset"
    telemetry = base / "telemetry"
    events = base / "events.jsonl"
    code = main([
        "study", "--days", "2", "--out", str(out), "--shards", "2",
        "--telemetry-dir", str(telemetry), "--events", str(events),
        "--serve-metrics", "0", "--profile", "-q",
        "--population", "420", "--seed", "3",
    ])
    assert code == 0
    return base


def test_events_validate_and_summary(observed_run, capsys):
    events = str(observed_run / "events.jsonl")
    assert main(["events", events, "--validate"]) == 0
    assert "repro-events/1 OK" in capsys.readouterr().out
    assert main(["events", events, "--summary"]) == 0
    out = capsys.readouterr().out
    assert "shard.day" in out
    assert main(["events", events, "--level", "warning"]) == 0


def test_events_bad_file_exits_1(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    assert main(["events", str(bad)]) == 1
    assert "cannot load events" in capsys.readouterr().err


def test_events_corrupted_log_fails_validation(observed_run, tmp_path, capsys):
    import json

    source = (observed_run / "events.jsonl").read_text().splitlines()
    records = [json.loads(line) for line in source]
    records[1]["seq"] = 99
    mangled = tmp_path / "mangled.jsonl"
    mangled.write_text(
        "\n".join(json.dumps(r) for r in records) + "\n")
    assert main(["events", str(mangled), "--validate"]) == 1
    assert "seq" in capsys.readouterr().err


def test_stats_includes_profile_section(observed_run, capsys):
    assert main(["stats", str(observed_run / "telemetry")]) == 0
    out = capsys.readouterr().out
    assert "profiling" in out
    assert "time by phase" in out


def test_report_events_provenance(observed_run, capsys):
    assert main(["report", str(observed_run / "dataset"),
                 "--min-days", "2",
                 "--events", str(observed_run / "events.jsonl")]) == 0
    out = capsys.readouterr().out
    assert "run provenance (from event log)" in out
    assert "chaos injections" in out


def test_watch_telemetry_dir(observed_run, capsys):
    assert main(["watch", str(observed_run / "telemetry")]) == 0
    out = capsys.readouterr().out
    assert "finished" in out


def test_watch_missing_target_exits_1(tmp_path, capsys):
    assert main(["watch", str(tmp_path / "nothing")]) == 1


def test_watch_unreachable_url_exits_1(capsys):
    assert main(["watch", "http://127.0.0.1:1", "--once",
                 "--interval", "0.01"]) == 1


def test_profile_requires_telemetry_dir(tmp_path, capsys):
    assert main(["study", "--out", str(tmp_path / "o"), "--profile",
                 "-q"] + ECO_ARGS) == 2
    assert "--telemetry-dir" in capsys.readouterr().err


def test_watch_live_study_over_http(tmp_path, capsys):
    """`repro watch --once` against a LivePlane-backed server."""
    from repro.obs.exporter import LivePlane

    plane = LivePlane(serve_port=0).start()
    try:
        plane.study_started(shards=2, days=2, workers=1)
        plane.progress.day_completed(0, day=0, days=2, grabs=10)
        assert main(["watch", plane.url, "--once"]) == 0
        out = capsys.readouterr().out
        assert "days 1/4" in out
    finally:
        plane.stop()
