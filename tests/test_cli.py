"""CLI tests: each subcommand end to end on tiny inputs."""

import pytest

from repro.cli import main

ECO_ARGS = ["--population", "420", "--seed", "3"]


def test_scan_known_domain(capsys):
    assert main(["scan", "yahoo.com"] + ECO_ARGS) == 0
    out = capsys.readouterr().out
    assert "success:         True" in out
    assert "STEK id:" in out
    assert "forward secret:  True" in out


def test_scan_unknown_domain(capsys):
    assert main(["scan", "no-such-host.invalid"] + ECO_ARGS) == 1
    out = capsys.readouterr().out
    assert "nxdomain" in out


@pytest.fixture(scope="module")
def study_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli-study")
    code = main([
        "study", "--days", "6", "--out", str(directory),
        "--population", "420", "--seed", "3",
    ])
    assert code == 0
    return directory


def test_study_writes_dataset(study_dir, capsys):
    assert (study_dir / "meta.json").exists()
    assert (study_dir / "ticket_daily.jsonl").exists()


def test_report_renders_tables(study_dir, capsys):
    assert main(["report", str(study_dir), "--min-days", "2"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "prolonged STEK reuse" in out
    assert "Largest STEK service groups" in out
    assert "cloudflare" in out
    assert "yahoo.com" in out


def test_audit_renders_windows(study_dir, capsys):
    assert main(["audit", str(study_dir), "--worst", "5"]) == 0
    out = capsys.readouterr().out
    assert "window > 24 hours" in out
    assert "rotate STEKs daily" in out
    assert "mechanism" in out


def test_target_analysis(capsys):
    code = main(["target", "google.com", "--horizon-hours", "36",
                 "--population", "420", "--seed", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Nation-state target analysis: google.com" in out
    assert "retrospectively decrypted" in out


def test_missing_subcommand_errors():
    with pytest.raises(SystemExit):
        main([])
