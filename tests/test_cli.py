"""CLI tests: each subcommand end to end on tiny inputs."""

import pytest

from repro.cli import main

ECO_ARGS = ["--population", "420", "--seed", "3"]


def test_scan_known_domain(capsys):
    assert main(["scan", "yahoo.com"] + ECO_ARGS) == 0
    out = capsys.readouterr().out
    assert "success:         True" in out
    assert "STEK id:" in out
    assert "forward secret:  True" in out


def test_scan_unknown_domain(capsys):
    assert main(["scan", "no-such-host.invalid"] + ECO_ARGS) == 1
    out = capsys.readouterr().out
    assert "nxdomain" in out


@pytest.fixture(scope="module")
def study_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli-study")
    code = main([
        "study", "--days", "6", "--out", str(directory),
        "--population", "420", "--seed", "3",
    ])
    assert code == 0
    return directory


def test_study_writes_dataset(study_dir, capsys):
    assert (study_dir / "meta.json").exists()
    assert (study_dir / "ticket_daily.jsonl").exists()


def test_report_renders_tables(study_dir, capsys):
    assert main(["report", str(study_dir), "--min-days", "2"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "prolonged STEK reuse" in out
    assert "Largest STEK service groups" in out
    assert "cloudflare" in out
    assert "yahoo.com" in out


def test_audit_renders_windows(study_dir, capsys):
    assert main(["audit", str(study_dir), "--worst", "5"]) == 0
    out = capsys.readouterr().out
    assert "window > 24 hours" in out
    assert "rotate STEKs daily" in out
    assert "mechanism" in out


def test_target_analysis(capsys):
    code = main(["target", "google.com", "--horizon-hours", "36",
                 "--population", "420", "--seed", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Nation-state target analysis: google.com" in out
    assert "retrospectively decrypted" in out


def test_missing_subcommand_errors():
    with pytest.raises(SystemExit):
        main([])


# --- telemetry: study --telemetry-dir and the stats subcommand ----------


@pytest.fixture(scope="module")
def telemetry_run(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli-telemetry")
    out, telemetry = root / "data", root / "telemetry"
    code = main([
        "study", "--days", "2", "--out", str(out),
        "--telemetry-dir", str(telemetry), "-q",
        "--population", "420", "--seed", "3",
    ])
    assert code == 0
    return out, telemetry


def test_study_quiet_suppresses_progress(telemetry_run, capsys):
    # The fixture ran with -q: no \r progress and no telemetry notice
    # may have reached stderr (results still go to stdout).
    assert "scanning day" not in capsys.readouterr().err


def test_study_writes_telemetry_next_to_dataset(telemetry_run):
    out, telemetry = telemetry_run
    assert (telemetry / "manifest.json").exists()
    assert (telemetry / "metrics.json").exists()
    assert (telemetry / "metrics.prom").exists()
    assert (telemetry / "trace.jsonl").exists()
    # ... and nothing leaked into the dataset directory.
    assert not (out / "manifest.json").exists()


def test_stats_renders_report(telemetry_run, capsys):
    _, telemetry = telemetry_run
    assert main(["stats", str(telemetry)]) == 0
    out = capsys.readouterr().out
    assert "run manifest: study" in out
    assert "per-experiment grabs:" in out
    assert "cache effectiveness:" in out
    assert "crypto.aes.key_cache" in out


def test_stats_prometheus_exposition(telemetry_run, capsys):
    _, telemetry = telemetry_run
    assert main(["stats", str(telemetry), "--prometheus"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE repro_scanner_grab_attempt_total counter" in out
    assert "repro_tls_server_handshake_total" in out


def test_stats_rejects_missing_directory(tmp_path, capsys):
    assert main(["stats", str(tmp_path / "nope")]) == 1
    assert "cannot load manifest" in capsys.readouterr().err


def test_study_rejects_telemetry_dir_equal_to_out(tmp_path, capsys):
    out = tmp_path / "data"
    code = main([
        "study", "--days", "2", "--out", str(out),
        "--telemetry-dir", str(out),
        "--population", "420", "--seed", "3",
    ])
    assert code == 2
    assert "must not be the dataset" in capsys.readouterr().err
