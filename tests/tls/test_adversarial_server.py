"""Client robustness against misbehaving servers.

A scanner survives on the open Internet only if its TLS client treats
every malformed, malicious, or protocol-violating server flight as a
recorded failure rather than a crash.  These tests wrap a well-behaved
server and corrupt specific parts of its flights.
"""

import pytest

from helpers import make_rig

from repro.crypto.prf import verify_data
from repro.crypto.mac import sha256
from repro.tls.constants import ContentType, ProtocolVersion
from repro.tls.messages import (
    Finished,
    ServerHello,
    parse_handshake,
    serialize_handshake,
)
from repro.tls.record import handshake_record, parse_records, serialize_records


class TamperingServer:
    """Delegates to a real server, mutating its first flight."""

    def __init__(self, inner, mutate):
        self._inner = inner
        self._mutate = mutate

    def accept(self, client_hello_bytes):
        flight, conn = self._inner.accept(client_hello_bytes)
        return self._mutate(flight), conn

    def finish_full(self, conn, client_flight):
        return self._inner.finish_full(conn, client_flight)

    def finish_abbreviated(self, conn, client_finished_bytes):
        return self._inner.finish_abbreviated(conn, client_finished_bytes)

    def handle_application_record(self, conn, record_bytes):
        return self._inner.handle_application_record(conn, record_bytes)


def connect_via(mutate, **rig_kwargs):
    rig = make_rig(**rig_kwargs)
    server = TamperingServer(rig.server, mutate)
    return rig, rig.client.connect(server, "example.com")


def test_truncated_flight_fails_cleanly():
    rig, result = connect_via(lambda flight: flight[: len(flight) // 2])
    assert not result.ok
    assert result.error


def test_garbage_flight_fails_cleanly():
    rig, result = connect_via(lambda flight: b"\x16\x03\x03\x00\x02ok")
    assert not result.ok


def test_empty_flight_fails_cleanly():
    rig, result = connect_via(lambda flight: b"")
    assert not result.ok


def test_flipped_signature_bit_rejected():
    """Corrupting the ServerKeyExchange signature must fail the
    handshake (MITM-injected parameters)."""

    def mutate(flight):
        # The signature is near the end of the SKE message; flip a byte
        # two-thirds of the way through the flight.
        data = bytearray(flight)
        data[2 * len(data) // 3] ^= 0x01
        return bytes(data)

    rig, result = connect_via(mutate)
    assert not result.ok


def test_unsolicited_resumption_rejected():
    """A server 'resuming' a session the client never offered must be
    refused — the client has no keys for it."""

    def mutate(flight):
        records = parse_records(flight)
        payload = records[0].payload
        hello, _ = parse_handshake(payload)
        fake_finished = Finished(verify_data=bytes(12))
        forged = serialize_handshake(hello) + serialize_handshake(fake_finished)
        return serialize_records([handshake_record(forged)])

    rig, result = connect_via(mutate)
    assert not result.ok
    assert "resumed a session we did not offer" in result.error


def test_forged_server_finished_rejected_on_resumption():
    """On a real resumption offer, a wrong server Finished must fail:
    the server hasn't proven it knows the master secret."""
    rig = make_rig(cache_lifetime=300.0)
    first = rig.client.connect(rig.server, "example.com", offer_tickets=False)
    assert first.ok

    def mutate(flight):
        records = parse_records(flight)
        payload = records[0].payload
        messages = []
        while payload:
            message, payload = parse_handshake(payload)
            messages.append(message)
        assert isinstance(messages[-1], Finished)
        messages[-1] = Finished(verify_data=b"\x00" * 12)
        forged = b"".join(serialize_handshake(m) for m in messages)
        return serialize_records([handshake_record(forged)])

    server = TamperingServer(rig.server, mutate)
    result = rig.client.connect(
        server, "example.com",
        session_id=first.session_id, saved_session=first.session,
        offer_tickets=False,
    )
    assert not result.ok
    assert "Finished verification failed" in result.error


def test_wrong_certificate_handshake_completes_but_flagged():
    """A server presenting someone else's certificate can't be stopped
    from completing a handshake, but trust validation must flag it."""
    rig = make_rig(hostname="other.net")
    result = rig.client.connect(rig.server, "example.com")
    assert result.ok
    assert not result.certificate_trusted


def test_alert_style_record_fails_cleanly():
    def mutate(flight):
        from repro.tls.record import TLSRecord

        alert = TLSRecord(ContentType.ALERT, ProtocolVersion.TLS12, b"\x02\x28")
        return alert.serialize()

    rig, result = connect_via(mutate)
    assert not result.ok


def test_server_cannot_downgrade_to_unoffered_suite():
    """A server selecting a cipher the client never offered is caught
    (our model: the client checks its offer list)."""
    from repro.tls.ciphers import DHE_ONLY_OFFER, TLS_RSA_WITH_AES_128_CBC_SHA

    def mutate(flight):
        records = parse_records(flight)
        payload = records[0].payload
        hello, rest = parse_handshake(payload)
        assert isinstance(hello, ServerHello)
        downgraded = ServerHello(
            version=hello.version,
            random=hello.random,
            session_id=hello.session_id,
            cipher_suite=TLS_RSA_WITH_AES_128_CBC_SHA,
            extensions=hello.extensions,
        )
        return serialize_records([
            handshake_record(serialize_handshake(downgraded) + rest)
        ])

    rig = make_rig()
    server = TamperingServer(rig.server, mutate)
    result = rig.client.connect(server, "example.com", offer=DHE_ONLY_OFFER)
    # The downgraded handshake cannot complete: the server's Finished is
    # bound to the true transcript, which no longer matches.
    assert not result.ok
