"""CBC (MAC-then-encrypt) record protection tests."""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.tls.ciphers import (
    TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
    TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
)
from repro.tls.constants import ProtocolVersion
from repro.tls.record import (
    CBCRecordCipher,
    RecordCipher,
    TLSRecord,
    decrypt_recorded_record,
    new_record_cipher,
)
from repro.tls.session import SessionState, derive_connection_keys
from repro.tls.wire import DecodeError


def make_keys(seed=5, suite=TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA):
    rng = DeterministicRandom(seed)
    session = SessionState(
        master_secret=rng.random_bytes(48),
        cipher_suite=suite,
        version=ProtocolVersion.TLS12,
        created_at=0.0,
    )
    return derive_connection_keys(session, rng.random_bytes(32), rng.random_bytes(32))


def pair(keys=None):
    keys = keys or make_keys()
    return CBCRecordCipher(keys, is_client=True), CBCRecordCipher(keys, is_client=False)


def test_factory_selects_mode():
    keys = make_keys()
    assert isinstance(
        new_record_cipher(keys, True, TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA),
        CBCRecordCipher,
    )
    assert isinstance(
        new_record_cipher(keys, True, TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256),
        RecordCipher,
    )
    assert isinstance(new_record_cipher(keys, True, None), RecordCipher)


def test_cbc_roundtrip():
    client, server = pair()
    for i in range(5):
        message = b"message %d with some length to it" % i
        assert server.unprotect(client.protect(message)) == message


def test_cbc_payload_structure():
    client, _ = pair()
    record = client.protect(b"hello")
    # explicit IV (16) + at least one AES block of ciphertext.
    assert len(record.payload) >= 16 + 16
    assert (len(record.payload) - 16) % 16 == 0
    assert b"hello" not in record.payload


def test_cbc_explicit_iv_differs_per_record():
    client, _ = pair()
    a = client.protect(b"same plaintext")
    b = client.protect(b"same plaintext")
    assert a.payload[:16] != b.payload[:16]
    assert a.payload != b.payload


def test_cbc_tamper_detected():
    client, server = pair()
    record = client.protect(b"data")
    mutated = TLSRecord(
        record.content_type, record.version,
        record.payload[:20] + bytes([record.payload[20] ^ 1]) + record.payload[21:],
    )
    with pytest.raises(DecodeError):
        server.unprotect(mutated)


def test_cbc_replay_detected():
    client, server = pair()
    record = client.protect(b"once")
    assert server.unprotect(record) == b"once"
    with pytest.raises(DecodeError):
        server.unprotect(record)


def test_cbc_short_record_rejected():
    _, server = pair()
    with pytest.raises(DecodeError):
        server.unprotect(
            TLSRecord(record_type(), ProtocolVersion.TLS12, bytes(8))
        )


def record_type():
    from repro.tls.constants import ContentType

    return ContentType.APPLICATION_DATA


def test_offline_cbc_decryption():
    keys = make_keys()
    client, _ = pair(keys)
    first = client.protect(b"first message")
    second = client.protect(b"second message")
    suite = TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA
    assert decrypt_recorded_record(keys, first, 0, True, suite) == b"first message"
    assert decrypt_recorded_record(keys, second, 1, True, suite) == b"second message"


def test_offline_cbc_wrong_keys():
    keys = make_keys(1)
    wrong = make_keys(2)
    client, _ = pair(keys)
    record = client.protect(b"data")
    with pytest.raises(DecodeError):
        decrypt_recorded_record(
            wrong, record, 0, True, TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA
        )


def test_cbc_end_to_end_handshake_and_attack():
    """A CBC-suite connection round-trips and falls to STEK theft."""
    from helpers import make_rig
    from repro.nationstate.adversary import NationStateAttacker, reconstruct_connection
    from repro.tls.ciphers import ECDHE_SUITES, RSA_SUITES

    cbc_only = tuple(s for s in ECDHE_SUITES if "_CBC_" in s.name) + RSA_SUITES
    rig = make_rig(suites=cbc_only)
    result = rig.client.connect(rig.server, "example.com", capture=True)
    assert result.ok
    assert "_CBC_" in result.cipher_suite.name
    reply = rig.client.exchange_data(result, b"GET /cbc")
    assert b"GET /cbc" in reply

    recorded = reconstruct_connection("example.com", 0.0, result.captured)
    attacker = NationStateAttacker()
    attacker.steal_steks(rig.stek_store.all_keys)
    outcome = attacker.decrypt(recorded)
    assert outcome.success
    assert any(b"GET /cbc" in p for p in outcome.plaintexts)
