"""Cipher-suite registry and negotiation tests."""

from repro.tls.ciphers import (
    ALL_SUITES,
    DHE_ONLY_OFFER,
    DHE_SUITES,
    ECDHE_FIRST_OFFER,
    ECDHE_SUITES,
    MODERN_BROWSER_OFFER,
    RSA_SUITES,
    SUITES_BY_CODE,
    SUITES_BY_NAME,
    TLS_DHE_RSA_WITH_AES_128_CBC_SHA,
    TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
    TLS_RSA_WITH_AES_128_CBC_SHA,
    select_suite,
)
from repro.tls.constants import KeyExchangeKind


def test_iana_codepoints():
    assert TLS_RSA_WITH_AES_128_CBC_SHA.code == 0x002F
    assert TLS_DHE_RSA_WITH_AES_128_CBC_SHA.code == 0x0033
    assert TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256.code == 0xC02F


def test_registries_consistent():
    for suite in ALL_SUITES:
        assert SUITES_BY_CODE[suite.code] is suite
        assert SUITES_BY_NAME[suite.name] is suite


def test_forward_secrecy_flag():
    assert not TLS_RSA_WITH_AES_128_CBC_SHA.forward_secret
    assert TLS_DHE_RSA_WITH_AES_128_CBC_SHA.forward_secret
    assert TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256.forward_secret


def test_family_partitions():
    assert set(ALL_SUITES) == set(RSA_SUITES) | set(DHE_SUITES) | set(ECDHE_SUITES)
    assert all(s.kex == KeyExchangeKind.RSA for s in RSA_SUITES)
    assert all(s.kex == KeyExchangeKind.DHE for s in DHE_SUITES)
    assert all(s.kex == KeyExchangeKind.ECDHE for s in ECDHE_SUITES)


def test_modern_offer_prefers_ecdhe():
    assert MODERN_BROWSER_OFFER[0].kex == KeyExchangeKind.ECDHE
    # RSA suites come last.
    kinds = [s.kex for s in MODERN_BROWSER_OFFER]
    assert kinds.index(KeyExchangeKind.RSA) > kinds.index(KeyExchangeKind.DHE)


def test_dhe_only_offer_is_pure():
    assert all(s.kex == KeyExchangeKind.DHE for s in DHE_ONLY_OFFER)


def test_ecdhe_first_offer_has_rsa_fallback():
    assert ECDHE_FIRST_OFFER[0].kex == KeyExchangeKind.ECDHE
    assert any(s.kex == KeyExchangeKind.RSA for s in ECDHE_FIRST_OFFER)
    assert not any(s.kex == KeyExchangeKind.DHE for s in ECDHE_FIRST_OFFER)


def test_select_suite_server_preference():
    client = [TLS_RSA_WITH_AES_128_CBC_SHA, TLS_DHE_RSA_WITH_AES_128_CBC_SHA]
    server = [TLS_DHE_RSA_WITH_AES_128_CBC_SHA, TLS_RSA_WITH_AES_128_CBC_SHA]
    assert select_suite(client, server) is TLS_DHE_RSA_WITH_AES_128_CBC_SHA


def test_select_suite_client_preference():
    client = [TLS_RSA_WITH_AES_128_CBC_SHA, TLS_DHE_RSA_WITH_AES_128_CBC_SHA]
    server = [TLS_DHE_RSA_WITH_AES_128_CBC_SHA, TLS_RSA_WITH_AES_128_CBC_SHA]
    chosen = select_suite(client, server, server_preference=False)
    assert chosen is TLS_RSA_WITH_AES_128_CBC_SHA


def test_select_suite_no_overlap():
    assert select_suite(list(DHE_SUITES), list(RSA_SUITES)) is None
    assert select_suite([], list(ALL_SUITES)) is None
    assert select_suite(list(ALL_SUITES), []) is None


def test_str_is_name():
    assert str(TLS_RSA_WITH_AES_128_CBC_SHA) == "TLS_RSA_WITH_AES_128_CBC_SHA"
