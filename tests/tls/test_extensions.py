"""Hello-extension codec tests."""

import pytest

from repro.tls.constants import ExtensionType
from repro.tls.extensions import (
    decode_extensions,
    decode_point_formats,
    decode_server_name,
    decode_session_ticket,
    decode_supported_groups,
    encode_extensions,
    encode_point_formats,
    encode_server_name,
    encode_session_ticket,
    encode_supported_groups,
    find_extension,
    has_extension,
)
from repro.tls.wire import ByteReader, DecodeError


def test_extension_list_roundtrip():
    extensions = [
        encode_server_name("example.com"),
        encode_session_ticket(b"opaque-ticket"),
        encode_supported_groups([23, 24]),
        encode_point_formats(),
    ]
    data = encode_extensions(extensions)
    decoded = decode_extensions(ByteReader(data))
    assert decoded == extensions


def test_empty_extension_list():
    assert decode_extensions(ByteReader(b"")) == []
    data = encode_extensions([])
    assert decode_extensions(ByteReader(data)) == []


def test_duplicate_extension_rejected():
    extensions = [encode_session_ticket(b"a"), encode_session_ticket(b"b")]
    data = encode_extensions(extensions)
    with pytest.raises(DecodeError):
        decode_extensions(ByteReader(data))


def test_find_and_has_extension():
    extensions = [encode_session_ticket(b"tkt"), encode_server_name("a.com")]
    assert find_extension(extensions, ExtensionType.SESSION_TICKET) == b"tkt"
    assert find_extension(extensions, ExtensionType.SUPPORTED_GROUPS) is None
    assert has_extension(extensions, ExtensionType.SERVER_NAME)
    assert not has_extension(extensions, ExtensionType.EC_POINT_FORMATS)


def test_server_name_roundtrip():
    ext_type, body = encode_server_name("www.example.com")
    assert ext_type == ExtensionType.SERVER_NAME
    assert decode_server_name(body) == "www.example.com"


def test_server_name_bad_type_rejected():
    # name_type 1 instead of 0
    from repro.tls.wire import ByteWriter

    entry = ByteWriter().u8(1).vec16(b"x.com").getvalue()
    body = ByteWriter().vec16(entry).getvalue()
    with pytest.raises(DecodeError):
        decode_server_name(body)


def test_session_ticket_empty_and_full():
    ext_type, body = encode_session_ticket()
    assert ext_type == ExtensionType.SESSION_TICKET
    assert body == b""
    _, body2 = encode_session_ticket(b"ticketbytes")
    assert decode_session_ticket(body2) == b"ticketbytes"


def test_supported_groups_roundtrip():
    _, body = encode_supported_groups([23, 21, 0xFE00])
    assert decode_supported_groups(body) == [23, 21, 0xFE00]


def test_supported_groups_odd_length_rejected():
    from repro.tls.wire import ByteWriter

    body = ByteWriter().vec16(b"\x00\x17\x00").getvalue()
    with pytest.raises(DecodeError):
        decode_supported_groups(body)


def test_point_formats_roundtrip():
    _, body = encode_point_formats([0, 1])
    assert decode_point_formats(body) == [0, 1]
    _, default_body = encode_point_formats()
    assert decode_point_formats(default_body) == [0]
