"""Fuzz-style property tests: parsers must fail closed.

Every byte-level parser in the TLS stack must raise ``DecodeError`` (or
a domain error) on malformed input — never ``IndexError``/``KeyError``/
unbounded allocation — because the scanner feeds them whatever the
network returns.
"""

from hypothesis import given, settings, strategies as st

import pytest

from helpers import make_rig

from repro.tls.errors import HandshakeFailure
from repro.tls.messages import parse_handshake
from repro.tls.record import parse_records
from repro.tls.ticket import TicketFormat, generate_stek, open_ticket, sniff_ticket_format
from repro.tls.wire import DecodeError
from repro.crypto.rng import DeterministicRandom
from repro.x509 import X509Certificate


@given(data=st.binary(max_size=400))
@settings(max_examples=150, deadline=None)
def test_parse_records_fails_closed(data):
    try:
        records = parse_records(data)
    except (DecodeError, ValueError):
        return
    total = sum(len(r.payload) + 5 for r in records)
    assert total == len(data)


@given(data=st.binary(max_size=400), hint=st.sampled_from([None, "dhe", "ecdhe"]))
@settings(max_examples=150, deadline=None)
def test_parse_handshake_fails_closed(data, hint):
    try:
        parse_handshake(data, kex_hint=hint)
    except (DecodeError, ValueError):
        pass


@given(data=st.binary(max_size=300))
@settings(max_examples=100, deadline=None)
def test_sniff_ticket_format_fails_closed(data):
    try:
        sniff_ticket_format(data)
    except DecodeError:
        pass


@given(data=st.binary(max_size=300))
@settings(max_examples=100, deadline=None)
def test_open_ticket_never_accepts_garbage(data):
    stek = generate_stek(DeterministicRandom(1), 0.0)
    assert open_ticket(stek, data, TicketFormat.RFC5077) is None


@given(data=st.binary(max_size=300))
@settings(max_examples=100, deadline=None)
def test_certificate_parse_fails_closed(data):
    try:
        X509Certificate.parse(data)
    except (DecodeError, ValueError, UnicodeDecodeError, OverflowError):
        pass


@given(data=st.binary(min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_server_accept_fails_closed(data):
    """Random bytes to a server: HandshakeFailure or DecodeError only."""
    rig = make_rig(seed=7)
    try:
        rig.server.accept(data)
    except (HandshakeFailure, DecodeError, ValueError):
        pass


def test_fuzzed_client_hello_mutations():
    """Bit-flip a valid ClientHello everywhere; server must never crash
    with a non-protocol exception."""
    rig = make_rig(seed=8)
    from repro.tls.ciphers import MODERN_BROWSER_OFFER
    from repro.tls.constants import ProtocolVersion
    from repro.tls.extensions import encode_server_name, encode_session_ticket
    from repro.tls.messages import ClientHello, serialize_handshake
    from repro.tls.record import handshake_record, serialize_records

    hello = ClientHello(
        version=ProtocolVersion.TLS12,
        random=bytes(32),
        session_id=b"\x01" * 32,
        cipher_suites=list(MODERN_BROWSER_OFFER),
        extensions=[encode_server_name("example.com"), encode_session_ticket(b"t" * 40)],
    )
    baseline = serialize_records([handshake_record(serialize_handshake(hello))])
    for index in range(0, len(baseline), 3):
        mutated = bytearray(baseline)
        mutated[index] ^= 0xFF
        try:
            flight, conn = rig.server.accept(bytes(mutated))
        except (HandshakeFailure, DecodeError, ValueError, UnicodeDecodeError):
            continue
        assert flight  # parsed fine despite the flip — also acceptable
