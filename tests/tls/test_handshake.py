"""Full client-server handshake integration tests."""

import pytest

from helpers import make_rig

from repro.crypto import ec
from repro.tls.ciphers import (
    DHE_ONLY_OFFER,
    ECDHE_FIRST_OFFER,
    MODERN_BROWSER_OFFER,
    RSA_SUITES,
)
from repro.tls.constants import KeyExchangeKind
from repro.tls.errors import HandshakeFailure
from repro.tls.keyexchange import KexReusePolicy, ReuseMode


def test_full_handshake_succeeds():
    rig = make_rig()
    result = rig.client.connect(rig.server, "example.com")
    assert result.ok, result.error
    assert not result.resumed
    assert result.certificate_trusted
    assert result.session is not None
    assert len(result.session_id) == 32


def test_ecdhe_negotiated_from_modern_offer():
    rig = make_rig()
    result = rig.client.connect(rig.server, "example.com")
    assert result.cipher_suite.kex == KeyExchangeKind.ECDHE
    assert result.forward_secret_kex
    assert result.server_kex_public.startswith(b"\x04")


def test_dhe_only_offer():
    rig = make_rig()
    result = rig.client.connect(rig.server, "example.com", offer=DHE_ONLY_OFFER)
    assert result.ok
    assert result.cipher_suite.kex == KeyExchangeKind.DHE


def test_rsa_only_server():
    rig = make_rig(suites=RSA_SUITES)
    result = rig.client.connect(rig.server, "example.com")
    assert result.ok
    assert result.cipher_suite.kex == KeyExchangeKind.RSA
    assert not result.forward_secret_kex
    assert result.server_kex_public == b""


def test_no_common_suite_fails():
    rig = make_rig(suites=RSA_SUITES)
    result = rig.client.connect(rig.server, "example.com", offer=DHE_ONLY_OFFER)
    assert not result.ok
    assert "cipher" in result.error


def test_ticket_issued_when_offered():
    rig = make_rig()
    result = rig.client.connect(rig.server, "example.com", offer_tickets=True)
    assert result.server_supports_tickets
    assert result.new_ticket is not None
    assert result.new_ticket.lifetime_hint_seconds == 300


def test_no_ticket_when_not_offered():
    rig = make_rig()
    result = rig.client.connect(rig.server, "example.com", offer_tickets=False)
    assert not result.server_supports_tickets
    assert result.new_ticket is None


def test_no_ticket_when_server_has_no_stek():
    rig = make_rig(tickets=False)
    result = rig.client.connect(rig.server, "example.com", offer_tickets=True)
    assert result.ok
    assert result.new_ticket is None


def test_untrusted_certificate_flagged():
    rig = make_rig()
    rig.client.trust_store = type(rig.trust)()  # empty store
    result = rig.client.connect(rig.server, "example.com")
    assert result.ok  # handshake completes; trust is a client policy
    assert not result.certificate_trusted
    assert "untrusted issuer" in result.certificate_error


def test_hostname_mismatch_flagged():
    rig = make_rig()
    result = rig.client.connect(rig.server, "other-site.net")
    assert result.ok
    assert not result.certificate_trusted
    assert "hostname" in result.certificate_error


def test_wildcard_hostname_matches():
    rig = make_rig()
    result = rig.client.connect(rig.server, "www.example.com")
    assert result.certificate_trusted


def test_application_data_roundtrip():
    rig = make_rig()
    result = rig.client.connect(rig.server, "example.com")
    reply = rig.client.exchange_data(result, b"GET / HTTP/1.1")
    assert b"GET / HTTP/1.1" in reply
    assert reply.startswith(b"HTTP/1.1 200")


def test_fresh_kex_value_changes_per_connection():
    rig = make_rig()
    a = rig.client.connect(rig.server, "example.com")
    b = rig.client.connect(rig.server, "example.com")
    assert a.server_kex_public != b.server_kex_public


def test_process_lifetime_kex_value_is_stable():
    rig = make_rig(kex_policy=KexReusePolicy(ReuseMode.PROCESS_LIFETIME))
    a = rig.client.connect(rig.server, "example.com")
    rig.clock.advance(10_000)
    b = rig.client.connect(rig.server, "example.com")
    assert a.server_kex_public == b.server_kex_public


def test_timed_kex_value_rotates():
    rig = make_rig(kex_policy=KexReusePolicy(ReuseMode.TIMED, 3600.0))
    a = rig.client.connect(rig.server, "example.com")
    rig.clock.advance(600)
    b = rig.client.connect(rig.server, "example.com")
    assert a.server_kex_public == b.server_kex_public
    rig.clock.advance(3600)
    c = rig.client.connect(rig.server, "example.com")
    assert c.server_kex_public != a.server_kex_public


def test_server_counters():
    rig = make_rig()
    rig.client.connect(rig.server, "example.com")
    rig.client.connect(rig.server, "example.com")
    assert rig.server.full_handshakes == 2
    assert rig.server.resumptions == 0


def test_handshake_on_p256():
    rig = make_rig(curve=ec.P256)
    result = rig.client.connect(rig.server, "example.com", offer=ECDHE_FIRST_OFFER)
    assert result.ok
    assert len(result.server_kex_public) == 65


def test_server_rejects_garbage_client_hello():
    rig = make_rig()
    with pytest.raises(HandshakeFailure):
        rig.server.accept(b"\x16\x03\x03\x00\x04garb")


def test_server_rejects_empty_input():
    rig = make_rig()
    with pytest.raises(HandshakeFailure):
        rig.server.accept(b"")


def test_no_session_id_when_disabled():
    rig = make_rig(issue_session_ids=False, cache_lifetime=None)
    result = rig.client.connect(rig.server, "example.com")
    assert result.ok
    assert result.session_id == b""


def test_captured_flights_populated():
    rig = make_rig()
    result = rig.client.connect(rig.server, "example.com", capture=True)
    assert len(result.captured) == 4  # CH, server flight, CKE+Fin, NST+Fin
    directions = [flight.from_client for flight in result.captured]
    assert directions == [True, False, True, False]
