"""Ephemeral key cache and ServerKeyExchange signing tests."""

import pytest

from repro.crypto import dh, ec, rsa
from repro.crypto.rng import DeterministicRandom
from repro.tls.keyexchange import (
    EphemeralKeyCache,
    KexReusePolicy,
    ReuseMode,
    build_dhe_kex,
    build_ecdhe_kex,
    verify_kex_signature,
)

RNG = DeterministicRandom(99)
SIGNING_KEY = rsa.generate_keypair(512, RNG)
CR, SR = RNG.random_bytes(32), RNG.random_bytes(32)


def test_policy_validation():
    with pytest.raises(ValueError):
        KexReusePolicy(ReuseMode.TIMED, lifetime_seconds=0)
    KexReusePolicy(ReuseMode.TIMED, lifetime_seconds=60)  # ok
    KexReusePolicy(ReuseMode.FRESH)  # lifetime ignored


def test_fresh_mode_regenerates_every_call():
    cache = EphemeralKeyCache(KexReusePolicy(ReuseMode.FRESH))
    a = cache.get_ec(ec.SECP128R1, RNG, now=0.0)
    b = cache.get_ec(ec.SECP128R1, RNG, now=0.0)
    assert a.public != b.public
    assert cache.generations == 2


def test_timed_mode_reuses_within_lifetime():
    cache = EphemeralKeyCache(KexReusePolicy(ReuseMode.TIMED, 100.0))
    a = cache.get_ec(ec.SECP128R1, RNG, now=0.0)
    b = cache.get_ec(ec.SECP128R1, RNG, now=99.0)
    assert a is b
    c = cache.get_ec(ec.SECP128R1, RNG, now=100.0)
    assert c is not a


def test_process_lifetime_reuses_until_restart():
    cache = EphemeralKeyCache(KexReusePolicy(ReuseMode.PROCESS_LIFETIME))
    a = cache.get_dh(dh.TEST_GROUP, RNG, now=0.0)
    b = cache.get_dh(dh.TEST_GROUP, RNG, now=10**9)
    assert a is b
    cache.restart()
    c = cache.get_dh(dh.TEST_GROUP, RNG, now=10**9)
    assert c is not a


def test_dh_and_ec_slots_are_independent():
    cache = EphemeralKeyCache(KexReusePolicy(ReuseMode.PROCESS_LIFETIME))
    dh_pair = cache.get_dh(dh.TEST_GROUP, RNG, now=0.0)
    ec_pair = cache.get_ec(ec.SECP128R1, RNG, now=0.0)
    # Requesting one family must not evict the other.
    assert cache.get_dh(dh.TEST_GROUP, RNG, now=1.0) is dh_pair
    assert cache.get_ec(ec.SECP128R1, RNG, now=1.0) is ec_pair


def test_per_family_policies():
    cache = EphemeralKeyCache(
        KexReusePolicy(ReuseMode.PROCESS_LIFETIME),
        ec_policy=KexReusePolicy(ReuseMode.FRESH),
    )
    dh_a = cache.get_dh(dh.TEST_GROUP, RNG, now=0.0)
    ec_a = cache.get_ec(ec.SECP128R1, RNG, now=0.0)
    assert cache.get_dh(dh.TEST_GROUP, RNG, now=1.0) is dh_a
    assert cache.get_ec(ec.SECP128R1, RNG, now=1.0) is not ec_a


def test_group_change_regenerates():
    cache = EphemeralKeyCache(KexReusePolicy(ReuseMode.PROCESS_LIFETIME))
    a = cache.get_dh(dh.TEST_GROUP, RNG, now=0.0)
    b = cache.get_dh(dh.OAKLEY_GROUP_2, RNG, now=0.0)
    assert a.group is not b.group


def test_current_values_expose_secrets():
    cache = EphemeralKeyCache(KexReusePolicy(ReuseMode.PROCESS_LIFETIME))
    assert cache.current_dh is None and cache.current_ec is None
    pair = cache.get_ec(ec.SECP128R1, RNG, now=0.0)
    assert cache.current_ec is pair


def test_dhe_kex_signature_verifies():
    keypair = dh.generate_keypair(dh.TEST_GROUP, RNG)
    message = build_dhe_kex(keypair, SIGNING_KEY, CR, SR)
    assert message.dh_public == keypair.public
    assert verify_kex_signature(message, SIGNING_KEY.public, CR, SR)


def test_ecdhe_kex_signature_verifies():
    keypair = ec.generate_keypair(ec.SECP128R1, RNG)
    message = build_ecdhe_kex(keypair, SIGNING_KEY, CR, SR)
    assert verify_kex_signature(message, SIGNING_KEY.public, CR, SR)
    assert ec.decode_point(ec.SECP128R1, message.point) == keypair.public


def test_signature_binds_randoms():
    keypair = dh.generate_keypair(dh.TEST_GROUP, RNG)
    message = build_dhe_kex(keypair, SIGNING_KEY, CR, SR)
    other_random = RNG.random_bytes(32)
    assert not verify_kex_signature(message, SIGNING_KEY.public, other_random, SR)
    assert not verify_kex_signature(message, SIGNING_KEY.public, CR, other_random)


def test_signature_binds_params():
    keypair = dh.generate_keypair(dh.TEST_GROUP, RNG)
    message = build_dhe_kex(keypair, SIGNING_KEY, CR, SR)
    import dataclasses

    forged = dataclasses.replace(message, dh_public=message.dh_public + 1)
    assert not verify_kex_signature(forged, SIGNING_KEY.public, CR, SR)


def test_signature_wrong_key_rejected():
    keypair = ec.generate_keypair(ec.SECP128R1, RNG)
    message = build_ecdhe_kex(keypair, SIGNING_KEY, CR, SR)
    other = rsa.generate_keypair(512, RNG)
    assert not verify_kex_signature(message, other.public, CR, SR)
