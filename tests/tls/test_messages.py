"""Handshake message serialization/parsing tests."""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.tls.ciphers import (
    MODERN_BROWSER_OFFER,
    TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
)
from repro.tls.constants import HandshakeType, ProtocolVersion
from repro.tls.extensions import encode_server_name, encode_session_ticket
from repro.tls.messages import (
    Certificate,
    ClientHello,
    ClientKeyExchange,
    Finished,
    NewSessionTicket,
    ServerHello,
    ServerHelloDone,
    ServerKeyExchangeDHE,
    ServerKeyExchangeECDHE,
    parse_handshake,
    serialize_handshake,
)
from repro.tls.wire import DecodeError

RNG = DeterministicRandom(55)
RANDOM = RNG.random_bytes(32)


def roundtrip(message, kex_hint=None):
    data = serialize_handshake(message)
    parsed, rest = parse_handshake(data, kex_hint=kex_hint)
    assert rest == b""
    return parsed


def test_client_hello_roundtrip():
    hello = ClientHello(
        version=ProtocolVersion.TLS12,
        random=RANDOM,
        session_id=b"\xaa" * 32,
        cipher_suites=list(MODERN_BROWSER_OFFER),
        extensions=[encode_server_name("x.com"), encode_session_ticket(b"t")],
    )
    parsed = roundtrip(hello)
    assert parsed.version == ProtocolVersion.TLS12
    assert parsed.random == RANDOM
    assert parsed.session_id == b"\xaa" * 32
    assert parsed.cipher_suites == list(MODERN_BROWSER_OFFER)
    assert parsed.extensions == hello.extensions


def test_client_hello_empty_session_id():
    hello = ClientHello(
        version=ProtocolVersion.TLS12,
        random=RANDOM,
        session_id=b"",
        cipher_suites=list(MODERN_BROWSER_OFFER),
    )
    assert roundtrip(hello).session_id == b""


def test_client_hello_unknown_suites_preserved():
    hello = ClientHello(
        version=ProtocolVersion.TLS12,
        random=RANDOM,
        session_id=b"",
        cipher_suites=[TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA],
        unknown_cipher_codes=[0x1301, 0x00FF],
    )
    parsed = roundtrip(hello)
    assert parsed.unknown_cipher_codes == [0x1301, 0x00FF]
    assert parsed.cipher_suites == [TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA]


def test_client_hello_bad_random_length():
    hello = ClientHello(
        version=ProtocolVersion.TLS12,
        random=b"short",
        session_id=b"",
        cipher_suites=[],
    )
    with pytest.raises(ValueError):
        hello.serialize_body()


def test_server_hello_roundtrip():
    hello = ServerHello(
        version=ProtocolVersion.TLS12,
        random=RANDOM,
        session_id=b"\xbb" * 32,
        cipher_suite=TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
        extensions=[encode_session_ticket(b"")],
    )
    parsed = roundtrip(hello)
    assert parsed.cipher_suite is TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA
    assert parsed.session_id == b"\xbb" * 32


def test_server_hello_unknown_cipher_rejected():
    data = serialize_handshake(
        ServerHello(
            version=ProtocolVersion.TLS12,
            random=RANDOM,
            session_id=b"",
            cipher_suite=TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
        )
    )
    # Patch the cipher code bytes to an unknown value (0x9999).
    mutated = bytearray(data)
    # body: type(1)+len(3)+version(2)+random(32)+sid_len(1)=39; cipher at 39..41
    mutated[4 + 2 + 32 + 1 : 4 + 2 + 32 + 3] = b"\x99\x99"
    with pytest.raises(DecodeError):
        parse_handshake(bytes(mutated))


def test_certificate_roundtrip():
    message = Certificate(chain=[b"cert-one", b"cert-two-bytes"])
    parsed = roundtrip(message)
    assert parsed.chain == [b"cert-one", b"cert-two-bytes"]


def test_certificate_empty_chain():
    assert roundtrip(Certificate(chain=[])).chain == []


def test_ske_dhe_roundtrip():
    message = ServerKeyExchangeDHE(
        dh_p=0xFFFF1,
        dh_g=2,
        dh_public=0x12345,
        signature=b"sig-bytes",
    )
    parsed = roundtrip(message, kex_hint="dhe")
    assert parsed.dh_p == 0xFFFF1
    assert parsed.dh_g == 2
    assert parsed.dh_public == 0x12345
    assert parsed.signature == b"sig-bytes"


def test_ske_ecdhe_roundtrip():
    message = ServerKeyExchangeECDHE(
        named_curve=23, point=b"\x04" + bytes(64), signature=b"s"
    )
    parsed = roundtrip(message, kex_hint="ecdhe")
    assert parsed.named_curve == 23
    assert parsed.point == b"\x04" + bytes(64)


def test_ske_requires_hint():
    data = serialize_handshake(
        ServerKeyExchangeDHE(dh_p=23, dh_g=5, dh_public=8, signature=b"")
    )
    with pytest.raises(DecodeError):
        parse_handshake(data)


def test_ske_params_bytes_excludes_signature():
    a = ServerKeyExchangeDHE(dh_p=23, dh_g=5, dh_public=8, signature=b"one")
    b = ServerKeyExchangeDHE(dh_p=23, dh_g=5, dh_public=8, signature=b"different")
    assert a.params_bytes() == b.params_bytes()


def test_server_hello_done_roundtrip():
    assert isinstance(roundtrip(ServerHelloDone()), ServerHelloDone)


def test_server_hello_done_rejects_payload():
    data = bytearray(serialize_handshake(ServerHelloDone()))
    data[3] = 1  # claim a 1-byte body
    data.append(0)
    with pytest.raises(DecodeError):
        parse_handshake(bytes(data))


def test_client_key_exchange_roundtrip():
    message = ClientKeyExchange(exchange_data=b"\x04" + bytes(32))
    assert roundtrip(message).exchange_data == b"\x04" + bytes(32)


def test_new_session_ticket_roundtrip():
    message = NewSessionTicket(lifetime_hint_seconds=100800, ticket=b"enc")
    parsed = roundtrip(message)
    assert parsed.lifetime_hint_seconds == 100800
    assert parsed.ticket == b"enc"


def test_finished_roundtrip_and_length_check():
    message = Finished(verify_data=bytes(12))
    assert roundtrip(message).verify_data == bytes(12)
    with pytest.raises(ValueError):
        Finished(verify_data=bytes(11)).serialize_body()


def test_parse_handshake_multiple_messages():
    data = serialize_handshake(ServerHelloDone()) + serialize_handshake(
        Finished(verify_data=bytes(12))
    )
    first, rest = parse_handshake(data)
    assert isinstance(first, ServerHelloDone)
    second, rest = parse_handshake(rest)
    assert isinstance(second, Finished)
    assert rest == b""


def test_parse_handshake_unknown_type():
    data = bytes([99, 0, 0, 0])
    with pytest.raises(DecodeError):
        parse_handshake(data)


def test_handshake_framing_layout():
    data = serialize_handshake(Finished(verify_data=bytes(12)))
    assert data[0] == HandshakeType.FINISHED
    assert int.from_bytes(data[1:4], "big") == 12
    assert len(data) == 4 + 12
