"""Record layer and application-data protection tests."""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.tls.ciphers import TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA
from repro.tls.constants import ContentType, ProtocolVersion
from repro.tls.record import (
    RecordCipher,
    TLSRecord,
    decrypt_recorded_record,
    handshake_record,
    parse_records,
    serialize_records,
)
from repro.tls.session import SessionState, derive_connection_keys
from repro.tls.wire import DecodeError


def make_keys(seed=5):
    rng = DeterministicRandom(seed)
    session = SessionState(
        master_secret=rng.random_bytes(48),
        cipher_suite=TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
        version=ProtocolVersion.TLS12,
        created_at=0.0,
    )
    return derive_connection_keys(session, rng.random_bytes(32), rng.random_bytes(32))


def test_record_roundtrip():
    records = [
        handshake_record(b"payload-one"),
        TLSRecord(ContentType.ALERT, ProtocolVersion.TLS12, b"\x02\x28"),
    ]
    parsed = parse_records(serialize_records(records))
    assert parsed == records


def test_record_layout():
    record = handshake_record(b"abc")
    data = record.serialize()
    assert data[0] == ContentType.HANDSHAKE
    assert int.from_bytes(data[1:3], "big") == ProtocolVersion.TLS12
    assert int.from_bytes(data[3:5], "big") == 3
    assert data[5:] == b"abc"


def test_parse_records_rejects_unknown_type():
    with pytest.raises(DecodeError):
        parse_records(b"\x63\x03\x03\x00\x00")


def test_parse_records_rejects_truncation():
    data = handshake_record(b"abcdef").serialize()
    with pytest.raises(DecodeError):
        parse_records(data[:-2])


def test_oversized_record_rejected():
    record = TLSRecord(ContentType.HANDSHAKE, ProtocolVersion.TLS12, bytes(20000))
    with pytest.raises(ValueError):
        record.serialize()


def test_protect_unprotect_roundtrip():
    keys = make_keys()
    client = RecordCipher(keys, is_client=True)
    server = RecordCipher(keys, is_client=False)
    record = client.protect(b"GET / HTTP/1.1")
    assert record.content_type is ContentType.APPLICATION_DATA
    assert server.unprotect(record) == b"GET / HTTP/1.1"


def test_bidirectional_sequences():
    keys = make_keys()
    client = RecordCipher(keys, is_client=True)
    server = RecordCipher(keys, is_client=False)
    for i in range(5):
        assert server.unprotect(client.protect(b"c%d" % i)) == b"c%d" % i
        assert client.unprotect(server.protect(b"s%d" % i)) == b"s%d" % i


def test_ciphertext_is_not_plaintext():
    keys = make_keys()
    client = RecordCipher(keys, is_client=True)
    record = client.protect(b"super secret content here")
    assert b"super secret" not in record.payload


def test_tampered_record_rejected():
    keys = make_keys()
    client = RecordCipher(keys, is_client=True)
    server = RecordCipher(keys, is_client=False)
    record = client.protect(b"data")
    bad = TLSRecord(
        record.content_type,
        record.version,
        bytes([record.payload[0] ^ 1]) + record.payload[1:],
    )
    with pytest.raises(DecodeError):
        server.unprotect(bad)


def test_replay_detected_by_sequence():
    keys = make_keys()
    client = RecordCipher(keys, is_client=True)
    server = RecordCipher(keys, is_client=False)
    record = client.protect(b"once")
    assert server.unprotect(record) == b"once"
    with pytest.raises(DecodeError):
        server.unprotect(record)  # receiver sequence advanced


def test_unprotect_wrong_content_type():
    keys = make_keys()
    server = RecordCipher(keys, is_client=False)
    with pytest.raises(DecodeError):
        server.unprotect(handshake_record(b"x"))


def test_unprotect_too_short():
    keys = make_keys()
    server = RecordCipher(keys, is_client=False)
    with pytest.raises(DecodeError):
        server.unprotect(
            TLSRecord(ContentType.APPLICATION_DATA, ProtocolVersion.TLS12, b"short")
        )


def test_offline_decryption_matches():
    """The attacker's offline path decrypts captured records."""
    keys = make_keys()
    client = RecordCipher(keys, is_client=True)
    server = RecordCipher(keys, is_client=False)
    c0 = client.protect(b"client msg 0")
    c1 = client.protect(b"client msg 1")
    s0 = server.protect(b"server msg 0")
    assert decrypt_recorded_record(keys, c0, 0, from_client=True) == b"client msg 0"
    assert decrypt_recorded_record(keys, c1, 1, from_client=True) == b"client msg 1"
    assert decrypt_recorded_record(keys, s0, 0, from_client=False) == b"server msg 0"


def test_offline_decryption_wrong_keys_fails():
    keys = make_keys(1)
    wrong = make_keys(2)
    client = RecordCipher(keys, is_client=True)
    record = client.protect(b"data")
    with pytest.raises(DecodeError):
        decrypt_recorded_record(wrong, record, 0, from_client=True)


def test_offline_decryption_wrong_sequence_fails():
    keys = make_keys()
    client = RecordCipher(keys, is_client=True)
    record = client.protect(b"data")
    with pytest.raises(DecodeError):
        decrypt_recorded_record(keys, record, 3, from_client=True)
