"""Session-ID and ticket resumption semantics — the paper's mechanisms."""

import pytest

from helpers import make_rig

from repro.tls.server import TicketPolicy
from repro.tls.ticket import TicketFormat, generate_stek


def full_handshake(rig, **kwargs):
    result = rig.client.connect(rig.server, "example.com", **kwargs)
    assert result.ok, result.error
    return result


# --- session-ID resumption ------------------------------------------------

def test_session_id_resumption():
    rig = make_rig(cache_lifetime=300.0)
    first = full_handshake(rig, offer_tickets=False)
    rig.clock.advance(10)
    second = rig.client.connect(
        rig.server, "example.com",
        session_id=first.session_id, saved_session=first.session,
        offer_tickets=False,
    )
    assert second.ok and second.resumed
    assert second.resumed_via == "session_id"
    assert second.session_id == first.session_id
    assert rig.server.resumptions == 1


def test_session_id_expired_falls_back_to_full():
    rig = make_rig(cache_lifetime=300.0)
    first = full_handshake(rig, offer_tickets=False)
    rig.clock.advance(301)
    second = rig.client.connect(
        rig.server, "example.com",
        session_id=first.session_id, saved_session=first.session,
        offer_tickets=False,
    )
    assert second.ok and not second.resumed
    assert second.session_id != first.session_id


def test_unknown_session_id_falls_back_to_full():
    rig = make_rig(cache_lifetime=300.0)
    first = full_handshake(rig, offer_tickets=False)
    second = rig.client.connect(
        rig.server, "example.com",
        session_id=b"\x42" * 32, saved_session=first.session,
        offer_tickets=False,
    )
    assert second.ok and not second.resumed


def test_nginx_style_ids_without_cache():
    """Issues session IDs but never resumes (cache disabled)."""
    rig = make_rig(cache_lifetime=None, issue_session_ids=True)
    first = full_handshake(rig, offer_tickets=False)
    assert first.session_id  # ID issued...
    second = rig.client.connect(
        rig.server, "example.com",
        session_id=first.session_id, saved_session=first.session,
        offer_tickets=False,
    )
    assert second.ok and not second.resumed  # ...but not honored


def test_resumed_connection_derives_fresh_keys():
    rig = make_rig(cache_lifetime=300.0)
    first = full_handshake(rig, offer_tickets=False)
    second = rig.client.connect(
        rig.server, "example.com",
        session_id=first.session_id, saved_session=first.session,
        offer_tickets=False,
    )
    assert second.server_random != first.server_random
    # Same master secret, fresh connection keys: app data still works.
    reply = rig.client.exchange_data(second, b"ping")
    assert b"ping" in reply


def test_resumption_requires_saved_session():
    rig = make_rig()
    with pytest.raises(ValueError):
        rig.client.connect(rig.server, "example.com", session_id=b"\x01" * 32)


def test_forged_session_id_cannot_hijack():
    """Offering another session's ID without its master secret fails."""
    rig = make_rig(cache_lifetime=300.0)
    victim = full_handshake(rig, offer_tickets=False)
    attacker_session = full_handshake(rig, offer_tickets=False).session
    result = rig.client.connect(
        rig.server, "example.com",
        session_id=victim.session_id,     # victim's ID
        saved_session=attacker_session,   # wrong master secret
        offer_tickets=False,
    )
    assert not result.ok  # server Finished cannot verify


# --- ticket resumption ------------------------------------------------------

def test_ticket_resumption():
    rig = make_rig(ticket_window=300.0)
    first = full_handshake(rig)
    rig.clock.advance(10)
    second = rig.client.connect(
        rig.server, "example.com",
        ticket=first.new_ticket.ticket, saved_session=first.session,
    )
    assert second.ok and second.resumed
    assert second.resumed_via == "ticket"
    assert rig.server.resumptions == 1


def test_ticket_reissued_on_resumption():
    rig = make_rig(ticket_window=300.0)
    first = full_handshake(rig)
    second = rig.client.connect(
        rig.server, "example.com",
        ticket=first.new_ticket.ticket, saved_session=first.session,
    )
    assert second.new_ticket is not None
    assert second.new_ticket.ticket != first.new_ticket.ticket


def test_expired_ticket_full_handshake():
    rig = make_rig(ticket_window=300.0)
    first = full_handshake(rig)
    rig.clock.advance(301)
    second = rig.client.connect(
        rig.server, "example.com",
        ticket=first.new_ticket.ticket, saved_session=first.session,
    )
    assert second.ok and not second.resumed


def test_original_ticket_window_measured_from_issuance():
    """Reissued tickets don't extend the original ticket's window."""
    rig = make_rig(ticket_window=300.0)
    first = full_handshake(rig)
    original = first.new_ticket.ticket
    rig.clock.advance(200)
    second = rig.client.connect(
        rig.server, "example.com", ticket=original, saved_session=first.session
    )
    assert second.resumed  # still within 300 s
    rig.clock.advance(200)  # 400 s after issuance
    third = rig.client.connect(
        rig.server, "example.com", ticket=original, saved_session=first.session
    )
    assert not third.resumed


def test_garbage_ticket_full_handshake():
    rig = make_rig()
    first = full_handshake(rig)
    result = rig.client.connect(
        rig.server, "example.com", ticket=b"garbage-bytes" * 4,
        saved_session=first.session,
    )
    assert result.ok and not result.resumed


def test_ticket_across_stek_rotation_with_retention():
    rig = make_rig(ticket_window=10_000.0, stek_retain=1)
    first = full_handshake(rig)
    rig.stek_store.rotate(generate_stek(rig.client._rng, rig.clock.now()))
    second = rig.client.connect(
        rig.server, "example.com",
        ticket=first.new_ticket.ticket, saved_session=first.session,
    )
    assert second.resumed  # previous STEK retained


def test_ticket_dead_after_retention_exceeded():
    rig = make_rig(ticket_window=10_000.0, stek_retain=0)
    first = full_handshake(rig)
    rig.stek_store.rotate(generate_stek(rig.client._rng, rig.clock.now()))
    second = rig.client.connect(
        rig.server, "example.com",
        ticket=first.new_ticket.ticket, saved_session=first.session,
    )
    assert not second.resumed


def test_ticket_takes_precedence_over_session_id():
    """RFC 5077 §3.4: a valid ticket wins over the session ID."""
    rig = make_rig(cache_lifetime=300.0, ticket_window=300.0)
    first = full_handshake(rig)
    second = rig.client.connect(
        rig.server, "example.com",
        session_id=first.session_id,
        ticket=first.new_ticket.ticket,
        saved_session=first.session,
    )
    assert second.resumed_via == "ticket"


def test_mbedtls_format_ticket_resumption():
    rig = make_rig(ticket_format=TicketFormat.MBEDTLS)
    first = full_handshake(rig)
    assert first.new_ticket is not None
    second = rig.client.connect(
        rig.server, "example.com",
        ticket=first.new_ticket.ticket, saved_session=first.session,
    )
    assert second.resumed


def test_schannel_format_ticket_resumption():
    rig = make_rig(ticket_format=TicketFormat.SCHANNEL)
    first = full_handshake(rig)
    second = rig.client.connect(
        rig.server, "example.com",
        ticket=first.new_ticket.ticket, saved_session=first.session,
    )
    assert second.resumed


def test_zero_window_issues_but_never_honors():
    """Models servers that issue tickets but don't resume them."""
    rig = make_rig(ticket_window=0.0)
    first = full_handshake(rig)
    assert first.new_ticket is not None
    rig.clock.advance(1)
    second = rig.client.connect(
        rig.server, "example.com",
        ticket=first.new_ticket.ticket, saved_session=first.session,
    )
    assert not second.resumed


def test_restart_clears_session_cache():
    rig = make_rig(cache_lifetime=10_000.0)
    first = full_handshake(rig, offer_tickets=False)
    rig.server.restart()
    second = rig.client.connect(
        rig.server, "example.com",
        session_id=first.session_id, saved_session=first.session,
        offer_tickets=False,
    )
    assert not second.resumed
