"""Session state, key derivation, and session-cache tests."""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.tls.ciphers import (
    TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
    TLS_RSA_WITH_AES_256_CBC_SHA,
)
from repro.tls.constants import ProtocolVersion
from repro.tls.session import SessionCache, SessionState, derive_connection_keys

RNG = DeterministicRandom(77)


def make_session(suite=TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA, created_at=0.0):
    return SessionState(
        master_secret=RNG.random_bytes(48),
        cipher_suite=suite,
        version=ProtocolVersion.TLS12,
        created_at=created_at,
        domain="example.com",
    )


def test_session_requires_48_byte_master():
    with pytest.raises(ValueError):
        SessionState(
            master_secret=b"short",
            cipher_suite=TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
            version=ProtocolVersion.TLS12,
            created_at=0.0,
        )


def test_key_derivation_structure():
    session = make_session()
    keys = derive_connection_keys(session, bytes(32), bytes(range(32)))
    assert len(keys.client_write_key) == 16
    assert len(keys.server_write_key) == 16
    assert len(keys.client_write_iv) == 16
    assert len(keys.server_write_iv) == 16
    assert len(keys.client_mac_key) == 32
    assert keys.client_write_key != keys.server_write_key


def test_key_derivation_256_bit_suite():
    session = make_session(suite=TLS_RSA_WITH_AES_256_CBC_SHA)
    keys = derive_connection_keys(session, bytes(32), bytes(32))
    assert len(keys.client_write_key) == 32


def test_key_derivation_depends_on_randoms():
    session = make_session()
    a = derive_connection_keys(session, bytes(32), bytes(32))
    b = derive_connection_keys(session, b"\x01" + bytes(31), bytes(32))
    assert a.client_write_key != b.client_write_key


def test_cache_store_lookup():
    cache = SessionCache(lifetime_seconds=100)
    session = make_session()
    cache.store(b"id-1", session, now=0.0)
    assert cache.lookup(b"id-1", now=50.0) is session
    assert cache.hits == 1


def test_cache_expiry():
    cache = SessionCache(lifetime_seconds=100)
    cache.store(b"id-1", make_session(), now=0.0)
    assert cache.lookup(b"id-1", now=101.0) is None
    assert cache.misses == 1
    # Expired entries are dropped on access.
    assert len(cache) == 0


def test_cache_exact_boundary_still_valid():
    cache = SessionCache(lifetime_seconds=100)
    cache.store(b"id", make_session(), now=0.0)
    assert cache.lookup(b"id", now=100.0) is not None


def test_cache_unknown_id_misses():
    cache = SessionCache(lifetime_seconds=100)
    assert cache.lookup(b"nope", now=0.0) is None
    assert cache.misses == 1


def test_cache_capacity_eviction_oldest_first():
    cache = SessionCache(lifetime_seconds=1000, capacity=3)
    for i in range(3):
        cache.store(b"id%d" % i, make_session(), now=float(i))
    cache.store(b"id3", make_session(), now=3.0)
    assert cache.lookup(b"id0", now=4.0) is None   # evicted
    assert cache.lookup(b"id3", now=4.0) is not None


def test_cache_overwrite_same_id_no_eviction():
    cache = SessionCache(lifetime_seconds=1000, capacity=2)
    cache.store(b"a", make_session(), now=0.0)
    cache.store(b"b", make_session(), now=1.0)
    cache.store(b"a", make_session(), now=2.0)  # refresh, not insert
    assert cache.lookup(b"b", now=3.0) is not None


def test_cache_expire_sweep():
    cache = SessionCache(lifetime_seconds=10)
    cache.store(b"old", make_session(), now=0.0)
    cache.store(b"new", make_session(), now=8.0)
    removed = cache.expire(now=15.0)
    assert removed == 1
    assert len(cache) == 1


def test_cache_clear_models_restart():
    cache = SessionCache(lifetime_seconds=1000)
    cache.store(b"x", make_session(), now=0.0)
    cache.clear()
    assert cache.lookup(b"x", now=1.0) is None


def test_live_sessions_snapshot():
    cache = SessionCache(lifetime_seconds=100)
    fresh = make_session()
    stale = make_session()
    cache.store(b"fresh", fresh, now=50.0)
    cache.store(b"stale", stale, now=0.0)
    live = cache.live_sessions(now=120.0)
    assert fresh in live and stale not in live


def test_cache_invalid_parameters():
    with pytest.raises(ValueError):
        SessionCache(lifetime_seconds=-1)
    with pytest.raises(ValueError):
        SessionCache(lifetime_seconds=10, capacity=0)
