"""RFC 5077 ticket and STEK tests."""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.tls.ciphers import TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA
from repro.tls.constants import ProtocolVersion
from repro.tls.session import SessionState
from repro.tls.ticket import (
    STEK,
    STEKStore,
    TicketFormat,
    extract_key_name,
    generate_stek,
    open_ticket,
    seal_ticket,
    sniff_ticket_format,
)
from repro.tls.wire import DecodeError

RNG = DeterministicRandom(88)


def make_session(domain="example.com"):
    return SessionState(
        master_secret=RNG.random_bytes(48),
        cipher_suite=TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
        version=ProtocolVersion.TLS12,
        created_at=1234.0,
        domain=domain,
    )


def test_stek_validation():
    with pytest.raises(ValueError):
        STEK(key_name=bytes(16), aes_key=bytes(8), hmac_key=bytes(32), created_at=0)
    with pytest.raises(ValueError):
        STEK(key_name=bytes(16), aes_key=bytes(16), hmac_key=bytes(16), created_at=0)


def test_generate_stek_fields():
    stek = generate_stek(RNG, now=9.0)
    assert len(stek.key_name) == 16
    assert len(stek.aes_key) == 16
    assert len(stek.hmac_key) == 32
    assert stek.created_at == 9.0
    short = generate_stek(RNG, now=9.0, key_name_length=4)
    assert len(short.key_name) == 4


def test_seal_open_roundtrip():
    stek = generate_stek(RNG, 0.0)
    session = make_session()
    ticket = seal_ticket(stek, session, RNG, issued_at=55.0)
    contents = open_ticket(stek, ticket)
    assert contents is not None
    assert contents.session == session
    assert contents.issued_at == 55.0


def test_issued_at_defaults_to_session_creation():
    stek = generate_stek(RNG, 0.0)
    session = make_session()
    ticket = seal_ticket(stek, session, RNG)
    assert open_ticket(stek, ticket).issued_at == session.created_at


def test_ticket_is_opaque():
    stek = generate_stek(RNG, 0.0)
    session = make_session()
    ticket = seal_ticket(stek, session, RNG)
    assert session.master_secret not in ticket


def test_wrong_stek_cannot_open():
    stek = generate_stek(RNG, 0.0)
    other = generate_stek(RNG, 0.0)
    ticket = seal_ticket(stek, make_session(), RNG)
    assert open_ticket(other, ticket) is None


def test_same_key_material_different_name_fails():
    stek = generate_stek(RNG, 0.0)
    renamed = STEK(
        key_name=RNG.random_bytes(16),
        aes_key=stek.aes_key,
        hmac_key=stek.hmac_key,
        created_at=0.0,
    )
    ticket = seal_ticket(stek, make_session(), RNG)
    assert open_ticket(renamed, ticket) is None


def test_tampered_ticket_rejected():
    stek = generate_stek(RNG, 0.0)
    ticket = bytearray(seal_ticket(stek, make_session(), RNG))
    ticket[20] ^= 0x01  # flip a bit in the IV
    assert open_ticket(stek, bytes(ticket)) is None
    ticket2 = bytearray(seal_ticket(stek, make_session(), RNG))
    ticket2[-1] ^= 0x01  # flip a MAC bit
    assert open_ticket(stek, bytes(ticket2)) is None


def test_truncated_ticket_rejected():
    stek = generate_stek(RNG, 0.0)
    ticket = seal_ticket(stek, make_session(), RNG)
    assert open_ticket(stek, ticket[:20]) is None
    assert open_ticket(stek, b"") is None


def test_key_name_visible_in_clear():
    stek = generate_stek(RNG, 0.0)
    ticket = seal_ticket(stek, make_session(), RNG)
    assert extract_key_name(ticket, TicketFormat.RFC5077) == stek.key_name


@pytest.mark.parametrize("fmt,name_len", [
    (TicketFormat.RFC5077, 16),
    (TicketFormat.MBEDTLS, 4),
    (TicketFormat.SCHANNEL, 16),
])
def test_all_formats_roundtrip(fmt, name_len):
    stek = generate_stek(RNG, 0.0, key_name_length=name_len)
    session = make_session()
    ticket = seal_ticket(stek, session, RNG, ticket_format=fmt)
    assert sniff_ticket_format(ticket) is fmt
    assert extract_key_name(ticket, fmt) == stek.key_name
    assert open_ticket(stek, ticket, fmt).session == session


def test_format_name_length_mismatch_rejected():
    stek = generate_stek(RNG, 0.0, key_name_length=16)
    with pytest.raises(ValueError):
        seal_ticket(stek, make_session(), RNG, ticket_format=TicketFormat.MBEDTLS)


def test_sniff_rejects_garbage():
    with pytest.raises(DecodeError):
        sniff_ticket_format(b"not-a-ticket")


def test_store_issue_and_open():
    store = STEKStore(generate_stek(RNG, 0.0))
    session = make_session()
    ticket = store.issue(session, RNG, now=10.0)
    contents = store.open(ticket)
    assert contents.session == session
    assert contents.issued_at == 10.0
    assert store.issued_count == 1
    assert store.opened_count == 1


def test_store_rotation_retains_previous():
    store = STEKStore(generate_stek(RNG, 0.0), retain=1)
    old_ticket = store.issue(make_session(), RNG, now=0.0)
    store.rotate(generate_stek(RNG, 100.0))
    assert store.open(old_ticket) is not None  # previous key retained
    store.rotate(generate_stek(RNG, 200.0))
    assert store.open(old_ticket) is None      # now beyond retention


def test_store_retain_zero_drops_immediately():
    store = STEKStore(generate_stek(RNG, 0.0), retain=0)
    old_ticket = store.issue(make_session(), RNG, now=0.0)
    store.rotate(generate_stek(RNG, 1.0))
    assert store.open(old_ticket) is None


def test_store_all_keys_order():
    first = generate_stek(RNG, 0.0)
    second = generate_stek(RNG, 1.0)
    store = STEKStore(first, retain=2)
    store.rotate(second)
    assert store.all_keys[0] is second
    assert store.all_keys[1] is first


def test_store_new_tickets_use_current_key():
    store = STEKStore(generate_stek(RNG, 0.0))
    store.rotate(generate_stek(RNG, 10.0))
    ticket = store.issue(make_session(), RNG, now=11.0)
    assert extract_key_name(ticket, TicketFormat.RFC5077) == store.current.key_name


def test_store_invalid_retain():
    with pytest.raises(ValueError):
        STEKStore(generate_stek(RNG, 0.0), retain=-1)


def test_stolen_stek_decrypts_old_tickets():
    """The core §6.1 harm: anyone with the STEK recovers master secrets."""
    store = STEKStore(generate_stek(RNG, 0.0))
    session = make_session()
    ticket = store.issue(session, RNG, now=0.0)
    stolen = store.current  # exfiltrated key material
    contents = open_ticket(stolen, ticket)
    assert contents.session.master_secret == session.master_secret
