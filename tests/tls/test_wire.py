"""Wire codec (ByteReader/ByteWriter) tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tls.wire import ByteReader, ByteWriter, DecodeError


def test_integer_widths():
    data = ByteWriter().u8(0xAB).u16(0x1234).u24(0x56789A).u32(0xDEADBEEF).getvalue()
    reader = ByteReader(data)
    assert reader.u8() == 0xAB
    assert reader.u16() == 0x1234
    assert reader.u24() == 0x56789A
    assert reader.u32() == 0xDEADBEEF
    reader.expect_end()


@pytest.mark.parametrize(
    "method,limit",
    [("u8", 1 << 8), ("u16", 1 << 16), ("u24", 1 << 24), ("u32", 1 << 32)],
)
def test_out_of_range_integers_rejected(method, limit):
    writer = ByteWriter()
    with pytest.raises(ValueError):
        getattr(writer, method)(limit)
    with pytest.raises(ValueError):
        getattr(writer, method)(-1)


def test_vectors_roundtrip():
    payloads = [b"", b"x", b"hello world", bytes(300)]
    for payload in payloads:
        if len(payload) < 256:
            data = ByteWriter().vec8(payload).getvalue()
            assert ByteReader(data).vec8() == payload
        data16 = ByteWriter().vec16(payload).getvalue()
        assert ByteReader(data16).vec16() == payload
        data24 = ByteWriter().vec24(payload).getvalue()
        assert ByteReader(data24).vec24() == payload


def test_vector_length_prefix_content():
    assert ByteWriter().vec8(b"ab").getvalue() == b"\x02ab"
    assert ByteWriter().vec16(b"ab").getvalue() == b"\x00\x02ab"
    assert ByteWriter().vec24(b"ab").getvalue() == b"\x00\x00\x02ab"


def test_truncated_reads_raise():
    reader = ByteReader(b"\x01")
    with pytest.raises(DecodeError):
        reader.u16()
    with pytest.raises(DecodeError):
        ByteReader(b"\x05abc").vec8()  # claims 5, has 3


def test_expect_end_rejects_trailing():
    reader = ByteReader(b"\x00\x01")
    reader.u8()
    with pytest.raises(DecodeError):
        reader.expect_end()


def test_rest_and_remaining():
    reader = ByteReader(b"abcdef")
    assert reader.remaining == 6
    reader.raw(2)
    assert reader.remaining == 4
    assert reader.rest() == b"cdef"
    assert reader.remaining == 0


def test_writer_len():
    writer = ByteWriter()
    assert len(writer) == 0
    writer.u32(1)
    assert len(writer) == 4


@given(chunks=st.lists(st.binary(max_size=50), max_size=8))
@settings(max_examples=60, deadline=None)
def test_vec16_sequence_roundtrip(chunks):
    writer = ByteWriter()
    for chunk in chunks:
        writer.vec16(chunk)
    reader = ByteReader(writer.getvalue())
    for chunk in chunks:
        assert reader.vec16() == chunk
    reader.expect_end()


@given(value=st.integers(min_value=0, max_value=(1 << 24) - 1))
@settings(max_examples=60, deadline=None)
def test_u24_roundtrip(value):
    assert ByteReader(ByteWriter().u24(value).getvalue()).u24() == value
