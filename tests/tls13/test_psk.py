"""TLS 1.3 PSK model tests (§2.4 / §8.1)."""

import pytest

from repro.crypto import ec
from repro.crypto.rng import DeterministicRandom
from repro.netsim.clock import DAY
from repro.tls13 import (
    DRAFT15_MAX_PSK_LIFETIME,
    Psk,
    PskIssuer,
    PskMode,
    attacker_recover_keys,
    derive_resumption_secret,
    resume,
)

RNG = DeterministicRandom(13)


def make_psk(issued_at=0.0, max_age=DRAFT15_MAX_PSK_LIFETIME):
    return Psk(
        identity=RNG.random_bytes(16),
        secret=RNG.random_bytes(32),
        issued_at=issued_at,
        max_age_seconds=max_age,
        origin_domain="example.com",
    )


def randoms():
    return RNG.random_bytes(32), RNG.random_bytes(32)


def test_resumption_secret_differs_from_master():
    master = RNG.random_bytes(48)
    resumption = derive_resumption_secret(master, b"nonce")
    assert resumption != master
    assert derive_resumption_secret(master, b"other") != resumption


def test_psk_expiry():
    psk = make_psk(issued_at=0.0)
    assert not psk.expired(7 * DAY)
    assert psk.expired(7 * DAY + 1)


def test_psk_ke_resumption_derives_keys():
    psk = make_psk()
    cr, sr = randoms()
    keys, server_kp, client_pub = resume(psk, cr, sr, PskMode.PSK_KE, RNG)
    assert keys.traffic_secret and keys.early_data_secret
    assert keys.new_resumption_secret != psk.secret
    assert server_kp is None and client_pub is None


def test_psk_dhe_ke_resumption_includes_dh():
    psk = make_psk()
    cr, sr = randoms()
    keys, server_kp, client_pub = resume(psk, cr, sr, PskMode.PSK_DHE_KE, RNG)
    assert server_kp is not None and client_pub is not None
    assert ec.is_on_curve(ec.SECP128R1, client_pub)


def test_modes_produce_different_traffic_keys():
    psk = make_psk()
    cr, sr = randoms()
    ke_keys, _, _ = resume(psk, cr, sr, PskMode.PSK_KE, RNG)
    dhe_keys, _, _ = resume(psk, cr, sr, PskMode.PSK_DHE_KE, RNG)
    assert ke_keys.traffic_secret != dhe_keys.traffic_secret
    # 0-RTT is PSK-only in both modes: identical early secrets.
    assert ke_keys.early_data_secret == dhe_keys.early_data_secret


def test_psk_ke_fully_decryptable_by_psk_thief():
    """The 1.2 ticket story, reborn: PSK theft = full decryption."""
    psk = make_psk()
    cr, sr = randoms()
    keys, _, _ = resume(psk, cr, sr, PskMode.PSK_KE, RNG)
    recovered = attacker_recover_keys(psk.secret, cr, sr, PskMode.PSK_KE)
    assert recovered.traffic_secret == keys.traffic_secret
    assert recovered.early_data_secret == keys.early_data_secret


def test_psk_dhe_ke_resists_psk_theft():
    """With a fresh DHE share, PSK theft yields only the 0-RTT secret."""
    psk = make_psk()
    cr, sr = randoms()
    keys, _, _ = resume(psk, cr, sr, PskMode.PSK_DHE_KE, RNG)
    recovered = attacker_recover_keys(psk.secret, cr, sr, PskMode.PSK_DHE_KE)
    assert recovered.traffic_secret == b""         # safe
    assert recovered.early_data_secret == keys.early_data_secret  # 0-RTT falls


def test_psk_dhe_ke_falls_to_reused_dh_value():
    """PSK theft + a reused server DHE value = full decryption again."""
    psk = make_psk()
    cr, sr = randoms()
    reused = ec.generate_keypair(ec.SECP128R1, RNG)
    keys, server_kp, client_pub = resume(
        psk, cr, sr, PskMode.PSK_DHE_KE, RNG, server_keypair=reused
    )
    assert server_kp is reused
    recovered = attacker_recover_keys(
        psk.secret, cr, sr, PskMode.PSK_DHE_KE,
        observed_client_public=client_pub,
        stolen_server_keypair=reused,
    )
    assert recovered.traffic_secret == keys.traffic_secret


def test_zero_rtt_always_falls_to_psk_theft():
    psk = make_psk()
    cr, sr = randoms()
    for mode in PskMode:
        keys, _, _ = resume(psk, cr, sr, mode, RNG)
        recovered = attacker_recover_keys(psk.secret, cr, sr, mode)
        assert recovered.early_data_secret == keys.early_data_secret, mode


def test_wrong_psk_recovers_nothing_useful():
    psk = make_psk()
    cr, sr = randoms()
    keys, _, _ = resume(psk, cr, sr, PskMode.PSK_KE, RNG)
    recovered = attacker_recover_keys(RNG.random_bytes(32), cr, sr, PskMode.PSK_KE)
    assert recovered.traffic_secret != keys.traffic_secret
    assert recovered.early_data_secret != keys.early_data_secret


# --- PskIssuer --------------------------------------------------------------

def test_self_encrypted_issue_accept_roundtrip():
    issuer = PskIssuer(DeterministicRandom(1), database_mode=False)
    secret = RNG.random_bytes(32)
    psk = issuer.issue(secret, now=100.0, domain="a.com")
    accepted = issuer.accept(psk.identity, now=200.0)
    assert accepted is not None
    assert accepted.secret == secret


def test_self_encrypted_expiry_enforced():
    issuer = PskIssuer(DeterministicRandom(2), database_mode=False,
                       max_age_seconds=1000.0)
    psk = issuer.issue(RNG.random_bytes(32), now=0.0)
    assert issuer.accept(psk.identity, now=999.0) is not None
    assert issuer.accept(psk.identity, now=1001.0) is None


def test_self_encrypted_tamper_rejected():
    issuer = PskIssuer(DeterministicRandom(3))
    psk = issuer.issue(RNG.random_bytes(32), now=0.0)
    mutated = bytes([psk.identity[0] ^ 1]) + psk.identity[1:]
    assert issuer.accept(mutated, now=1.0) is None
    assert issuer.accept(b"short", now=1.0) is None


def test_attacker_opens_identity_with_stolen_key():
    """The 1.3 STEK: one key opens every identity it sealed — expired
    or not (policy expiry does not protect recorded traffic)."""
    issuer = PskIssuer(DeterministicRandom(4), max_age_seconds=100.0)
    secret = RNG.random_bytes(32)
    psk = issuer.issue(secret, now=0.0)
    assert issuer.attacker_open_identity(psk.identity) == secret
    # Even long after expiry:
    assert issuer.accept(psk.identity, now=10_000.0) is None
    assert issuer.attacker_open_identity(psk.identity) == secret


def test_attacker_cannot_open_without_key():
    a = PskIssuer(DeterministicRandom(5))
    b = PskIssuer(DeterministicRandom(6))
    psk = a.issue(RNG.random_bytes(32), now=0.0)
    assert b.attacker_open_identity(psk.identity) is None


def test_database_mode_roundtrip_and_dump():
    issuer = PskIssuer(DeterministicRandom(7), database_mode=True)
    secrets = [RNG.random_bytes(32) for _ in range(3)]
    psks = [issuer.issue(s, now=0.0, domain=f"d{i}.com") for i, s in enumerate(secrets)]
    for psk, secret in zip(psks, secrets):
        assert issuer.accept(psk.identity, now=1.0).secret == secret
    # Database compromise yields every stored secret (session-cache-like).
    dumped = {p.secret for p in issuer.attacker_dump_database()}
    assert dumped == set(secrets)


def test_database_mode_expire_sweep_limits_exposure():
    issuer = PskIssuer(DeterministicRandom(8), database_mode=True,
                       max_age_seconds=100.0)
    issuer.issue(RNG.random_bytes(32), now=0.0)
    issuer.issue(RNG.random_bytes(32), now=90.0)
    removed = issuer.expire(now=150.0)
    assert removed == 1
    assert len(issuer.attacker_dump_database()) == 1


def test_database_mode_identity_opaque_to_key_thief():
    issuer = PskIssuer(DeterministicRandom(9), database_mode=True)
    psk = issuer.issue(RNG.random_bytes(32), now=0.0)
    assert issuer.attacker_open_identity(psk.identity) is None


def test_draft15_seven_day_ceiling_is_default():
    issuer = PskIssuer(DeterministicRandom(10))
    psk = issuer.issue(RNG.random_bytes(32), now=0.0)
    assert psk.max_age_seconds == 7 * DAY
