"""Certificate model and trust-store tests."""

import pytest

from repro.crypto import rsa
from repro.crypto.rng import DeterministicRandom
from repro.x509 import CertificateAuthority, TrustStore, X509Certificate

RNG = DeterministicRandom(123)
CA = CertificateAuthority("Root CA", rsa.generate_keypair(512, RNG))
OTHER_CA = CertificateAuthority("Other CA", rsa.generate_keypair(512, RNG))
LEAF_KEY = rsa.generate_keypair(512, RNG)


def make_store(*cas):
    store = TrustStore()
    for ca in cas:
        store.add_root(ca.name, ca.public_key)
    return store


def issue(names=("example.com",), ca=CA, nb=0.0, na=1e9):
    return ca.issue(list(names), LEAF_KEY.public, nb, na)


def test_issue_and_validate():
    cert = issue()
    store = make_store(CA)
    assert store.validate(cert, "example.com", now=100.0)


def test_serialize_parse_roundtrip():
    cert = issue(("example.com", "*.example.com"))
    parsed = X509Certificate.parse(cert.serialize())
    assert parsed.subject_names == cert.subject_names
    assert parsed.issuer == cert.issuer
    assert parsed.signature == cert.signature
    assert parsed.public_key.n == cert.public_key.n
    # Parsed certificate still validates.
    assert make_store(CA).validate(parsed, "example.com", now=1.0)


def test_parse_garbage_rejected():
    with pytest.raises(Exception):
        X509Certificate.parse(b"nonsense")


def test_untrusted_issuer_rejected():
    cert = issue(ca=OTHER_CA)
    result = make_store(CA).validate(cert, "example.com", now=1.0)
    assert not result
    assert "untrusted issuer" in result.reason


def test_forged_signature_rejected():
    cert = issue()
    forged = X509Certificate(data=cert.data, signature=cert.signature ^ 1)
    result = make_store(CA).validate(forged, "example.com", now=1.0)
    assert not result and "signature" in result.reason


def test_expired_certificate_rejected():
    cert = issue(nb=0.0, na=100.0)
    store = make_store(CA)
    assert store.validate(cert, "example.com", now=50.0)
    result = store.validate(cert, "example.com", now=101.0)
    assert not result and "expired" in result.reason


def test_not_yet_valid_rejected():
    cert = issue(nb=1000.0, na=2000.0)
    assert not make_store(CA).validate(cert, "example.com", now=500.0)


def test_hostname_mismatch_rejected():
    cert = issue()
    result = make_store(CA).validate(cert, "evil.com", now=1.0)
    assert not result and "hostname" in result.reason


def test_hostname_skipped_when_none():
    cert = issue()
    assert make_store(CA).validate(cert, None, now=1.0)


def test_exact_hostname_matching():
    cert = issue(("a.example.com",))
    assert cert.matches_hostname("a.example.com")
    assert cert.matches_hostname("A.EXAMPLE.COM")
    assert cert.matches_hostname("a.example.com.")
    assert not cert.matches_hostname("b.example.com")


def test_wildcard_matching_single_label_only():
    cert = issue(("*.example.com",))
    assert cert.matches_hostname("www.example.com")
    assert not cert.matches_hostname("example.com")
    assert not cert.matches_hostname("a.b.example.com")
    assert not cert.matches_hostname(".example.com")


def test_multiple_sans():
    cert = issue(("example.com", "example.net", "*.cdn.example.org"))
    assert cert.matches_hostname("example.net")
    assert cert.matches_hostname("x.cdn.example.org")
    assert not cert.matches_hostname("example.org")


def test_serials_increment():
    a = CA.issue(["a.com"], LEAF_KEY.public, 0, 100)
    b = CA.issue(["b.com"], LEAF_KEY.public, 0, 100)
    assert b.data.serial == a.data.serial + 1


def test_issue_validation_errors():
    with pytest.raises(ValueError):
        CA.issue([], LEAF_KEY.public, 0, 100)
    with pytest.raises(ValueError):
        CA.issue(["x.com"], LEAF_KEY.public, 100, 100)


def test_fingerprint_distinct():
    a = issue(("a.com",))
    b = issue(("b.com",))
    assert a.fingerprint() != b.fingerprint()
    assert len(a.fingerprint()) == 32


def test_trust_store_introspection():
    store = make_store(CA, OTHER_CA)
    assert store.trusts("Root CA")
    assert not store.trusts("Nobody")
    assert store.root_names() == ["Other CA", "Root CA"]
