#!/usr/bin/env python3
"""docs-check: keep the documentation executable and the CLI table fresh.

Two modes, both exercised by the ``docs-check`` CI job:

``cli-table``
    Regenerates the CLI reference from the argparse tree
    (``python -m repro.cli --doc-table``) and diffs it against the
    block between ``<!-- cli-reference:begin -->`` and
    ``<!-- cli-reference:end -->`` in README.md.  ``--write`` updates
    the block in place instead of failing.

``walkthrough FILE [FILE ...]``
    Executes a markdown file's annotated fenced code blocks, verbatim,
    in one shared scratch directory per file:

    * ``<!-- docs-check: run -->`` before a ```bash/```python block —
      run it (bash -euo pipefail / the current Python); non-zero exit
      fails the check;
    * ``<!-- docs-check: expect -->`` before a fenced block — its text
      must equal the previous run block's stdout exactly.

    Blocks without a directive are prose, not contracts.

Usage::

    python tools/check_docs.py cli-table [--write]
    python tools/check_docs.py walkthrough README.md EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import difflib
import os
import re
import shutil
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
BEGIN = "<!-- cli-reference:begin -->"
END = "<!-- cli-reference:end -->"
RUN = "<!-- docs-check: run -->"
EXPECT = "<!-- docs-check: expect -->"

sys.path.insert(0, SRC)


# --- cli-table mode ----------------------------------------------------


def generated_table() -> str:
    from repro.cli import build_parser, render_cli_table

    return render_cli_table(build_parser())


def check_cli_table(readme_path: str, write: bool) -> int:
    with open(readme_path, "r", encoding="utf-8") as fh:
        text = fh.read()
    pattern = re.compile(
        re.escape(BEGIN) + r"\n(.*?)" + re.escape(END), re.DOTALL)
    match = pattern.search(text)
    if match is None:
        print(f"{readme_path}: missing {BEGIN} / {END} markers",
              file=sys.stderr)
        return 1
    fresh = generated_table().rstrip("\n") + "\n"
    current = match.group(1)
    if current == fresh:
        print(f"{readme_path}: CLI reference is up to date")
        return 0
    if write:
        updated = text[: match.start(1)] + fresh + text[match.end(1):]
        with open(readme_path, "w", encoding="utf-8") as fh:
            fh.write(updated)
        print(f"{readme_path}: CLI reference rewritten")
        return 0
    print(f"{readme_path}: CLI reference is stale "
          f"(run `python tools/check_docs.py cli-table --write`):",
          file=sys.stderr)
    sys.stderr.writelines(difflib.unified_diff(
        current.splitlines(keepends=True), fresh.splitlines(keepends=True),
        fromfile="README.md", tofile="--doc-table"))
    return 1


# --- walkthrough mode --------------------------------------------------


FENCE = re.compile(r"^```(\w*)\s*$")


def annotated_blocks(text: str):
    """Yield (directive, language, body, line_number) for fenced blocks
    immediately preceded by a docs-check directive comment."""
    lines = text.splitlines()
    directive = None
    i = 0
    while i < len(lines):
        stripped = lines[i].strip()
        if stripped in (RUN, EXPECT):
            directive = stripped
            i += 1
            continue
        fence = FENCE.match(stripped)
        if fence and directive:
            language = fence.group(1)
            body: list[str] = []
            start = i + 1
            i += 1
            while i < len(lines) and lines[i].strip() != "```":
                body.append(lines[i])
                i += 1
            yield directive, language, "\n".join(body), start
            directive = None
        elif stripped:
            directive = None
        i += 1


def run_block(language: str, body: str, cwd: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    if language == "python":
        command = [sys.executable, "-c", body]
    else:
        command = ["bash", "-euo", "pipefail", "-c", body]
    return subprocess.run(
        command, cwd=cwd, env=env, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)


def check_walkthrough(path: str) -> int:
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    scratch = tempfile.mkdtemp(prefix="docs-check-")
    failures = 0
    last_output: str | None = None
    ran = 0
    try:
        for directive, language, body, line in annotated_blocks(text):
            if directive == RUN:
                ran += 1
                print(f"{path}:{line}: running {language or 'bash'} block")
                proc = run_block(language, body, scratch)
                last_output = proc.stdout
                if proc.returncode != 0:
                    failures += 1
                    print(f"{path}:{line}: block exited "
                          f"{proc.returncode}:\n{proc.stdout}",
                          file=sys.stderr)
            else:
                if last_output is None:
                    failures += 1
                    print(f"{path}:{line}: expect block with no preceding "
                          f"run block", file=sys.stderr)
                    continue
                want = body.rstrip("\n")
                got = last_output.rstrip("\n")
                if want != got:
                    failures += 1
                    print(f"{path}:{line}: output drifted from the "
                          f"documented transcript:", file=sys.stderr)
                    sys.stderr.writelines(difflib.unified_diff(
                        want.splitlines(keepends=True),
                        got.splitlines(keepends=True),
                        fromfile=f"{path}:{line} (documented)",
                        tofile="actual output", lineterm="\n"))
                    sys.stderr.write("\n")
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    if failures:
        print(f"{path}: {failures} failing block(s)", file=sys.stderr)
        return 1
    print(f"{path}: {ran} run block(s) OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_docs", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="mode", required=True)
    table = sub.add_parser("cli-table", help="diff README's CLI reference")
    table.add_argument("--readme", default=os.path.join(REPO, "README.md"))
    table.add_argument("--write", action="store_true",
                       help="rewrite the block instead of failing")
    walk = sub.add_parser("walkthrough", help="execute annotated blocks")
    walk.add_argument("files", nargs="+")
    args = parser.parse_args(argv)
    if args.mode == "cli-table":
        return check_cli_table(args.readme, args.write)
    status = 0
    for path in args.files:
        status |= check_walkthrough(path)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
